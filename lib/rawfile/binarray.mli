(** Binary array files.

    A minimal scientific array format standing in for the paper's
    ROOT/NetCDF/HDF5 examples (§3.1): a header describing dimensions and a
    record of named fields per cell, then row-major fixed-width cell data
    (8 bytes per field: int64 or float64). Fixed-width cells give the
    constant per-tuple access cost the paper's cost model contrasts with
    textual formats — reading cell (i,j) is a direct seek, no tokenization.

    Layout:
    {v
    magic "VARR" | version u8 | ndims u8 | dims: i64 × ndims
    | nfields u16 | fields: (name_len u16, name bytes, typecode u8) ×
    | cells: row-major, nfields × 8 bytes each
    v}
    All integers little-endian. Typecodes: 0 = int64, 1 = float64.
    A zero in the data of an int64 field encodes NULL when the header flag
    marks the field nullable is {e not} supported — nulls are not
    representable, matching dense scientific arrays. *)

type field = { name : string; is_float : bool }

type header = { dims : int list; fields : field list }

(** [write path ~dims ~fields cells] writes a file; [cells] is called with
    the flat cell index and must return one value per field ([Int] or
    [Float] as declared).
    @raise Vida_error.Error ([Invalid_request]) on shape mismatch. *)
val write :
  string -> dims:int list -> fields:field list -> (int -> Vida_data.Value.t array) -> unit

type t

(** [open_file buf] parses and validates the header (a corrupted header
    may not promise more cells than the file holds).
    @raise Vida_error.Error ([Parse_error]/[Truncated]) on a malformed
    file. *)
val open_file : Raw_buffer.t -> t

val header : t -> header
val cell_count : t -> int

(** [field_index t name] is the position of field [name]. *)
val field_index : t -> string -> int option

(** [get t ~cell ~field] reads one scalar with a direct seek. *)
val get : t -> cell:int -> field:int -> Vida_data.Value.t

(** [get_cell t ~cell] reads a full cell as a record. *)
val get_cell : t -> cell:int -> Vida_data.Value.t

(** [cell_of_indices t idxs] converts multi-dimensional indices to the flat
    cell index.
    @raise Vida_error.Error ([Invalid_request]) on rank/bound mismatch. *)
val cell_of_indices : t -> int list -> int

(** [to_value t] materializes the whole file as a nested [Array] value of
    records — the "load everything" path baselines use. *)
val to_value : t -> Vida_data.Value.t

(** {1 Batch decode}

    Entry points of the vectorized engine: decode a contiguous cell range
    of one field straight into an unboxed buffer with a single bounds
    check, slice and stats tap per call, instead of one {!get} (range
    check + slice + [Value] box) per cell. The caller matches the buffer
    to the field's declared type ({!header}). *)

val fill_floats :
  t -> field:int -> lo:int -> hi:int ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> unit
(** [fill_floats t ~field ~lo ~hi out] decodes cells [lo, hi) of a
    float64 field into [out.{0 .. hi-lo-1}].
    @raise Vida_error.Error ([Invalid_request]) on a bad range, field or
    undersized buffer. *)

val fill_ints :
  t -> field:int -> lo:int -> hi:int ->
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t -> unit
(** [fill_ints] is {!fill_floats} for int64 fields (values are truncated
    to the native 63-bit [int], as {!get} does). *)

(** {1 Zone maps}

    Per-block min/max statistics over a field (the paper's "indexes over
    their contents" that scan operators exploit, §4.1): a predicated scan
    skips whole blocks whose value range cannot satisfy the predicate.
    Built lazily on first use (one pass over the field) and memoized. *)

(** Block size in cells used by the zone maps. *)
val zone_block : int

(** [zones t ~field] is the per-block [(min, max)] array for a field,
    numeric comparison over int/float values. *)
val zones : t -> field:int -> (float * float) array

(** An inclusive numeric range restriction on one field; [None] bounds are
    open. *)
type range = { field : int; lo : float option; hi : float option }

(** [scan_filtered t ~ranges f] calls [f cell] for every cell in blocks
    whose zones possibly intersect all [ranges] — a conservative superset
    of the matching cells (callers re-apply the exact predicate). Counts
    skipped blocks as saved reads. *)
val scan_filtered : t -> ranges:range list -> (int -> unit) -> unit

(** [matching_runs t ~ranges ~lo ~hi f] calls [f rlo rhi] for each maximal
    run of cells in [lo, hi) lying in consecutive blocks whose zones
    possibly intersect all [ranges] — the batch-granular counterpart of
    {!scan_filtered}, used by the vectorized engine to prune whole batch
    decodes. Pruned blocks count as skipped. [ranges = []] yields the
    whole range as one run. *)
val matching_runs :
  t -> ranges:range list -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** Blocks skipped by [scan_filtered] / [matching_runs] since the handle
    was opened. *)
val blocks_skipped : t -> int
