(** Content fingerprints of raw source files.

    Used to detect corruption and staleness before serving derived data:
    positional-map sidecars, cache entries, whole-query results and query
    epochs each record the fingerprint of the file they were computed
    from, and are auto-invalidated (rebuilt from the raw bytes) when the
    file no longer matches instead of returning garbage.

    A fingerprint is the file size plus MD5 digests of the first and last
    4 KiB windows {e and} of one interior 4 KiB window at a size-seeded
    offset (so edits strictly between head and tail are not a guaranteed
    blind spot). The mtime is deliberately not part of it: the stdlib
    exposes no portable stat (Unix is not a dependency of this tree), and
    content digests also catch same-size in-place rewrites that mtime
    granularity can miss. *)

type t = { size : int; head : string; mid : string; tail : string }
(** [head]/[mid]/[tail] are raw 16-byte MD5 digests of the windows. For
    files small enough that head and tail cover every byte, [mid] repeats
    [head]. *)

val window : int
(** window width in bytes (4096). *)

(** [of_contents s] fingerprints in-memory bytes. *)
val of_contents : string -> t

(** [of_sub s ~size] fingerprints the first [size] bytes of [s] — the
    fingerprint a file holding exactly that prefix would have. *)
val of_sub : string -> size:int -> t

(** [of_buffer buf] fingerprints a raw buffer (forces it; counts as a raw
    read). *)
val of_buffer : Raw_buffer.t -> t

(** [probe path] fingerprints a file directly — no {!Io_stats} accounting,
    no buffer load. [None] when the file cannot be read. *)
val probe : string -> t option

(** [probe_prefix path ~size] fingerprints the first [size] bytes of the
    file at [path] — what {!probe} returned before the file grew, iff the
    prefix is unchanged. [None] when the file is shorter than [size] or
    unreadable. The delta detector uses this to classify appends. *)
val probe_prefix : string -> size:int -> t option

val equal : t -> t -> bool

(** Fixed-width binary form for sidecars and cache tags, version-tagged.
    Bumping the window layout bumps the version: {!decode} returns [None]
    for any older form, which callers treat as stale. *)
val encoded_size : int

val encode : t -> string

(** [decode s ~pos] reads an encoded fingerprint; [None] if out of range
    or not the current encoding version. *)
val decode : string -> pos:int -> t option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
