(** Content fingerprints of raw source files.

    Used to detect corruption and staleness before serving derived data:
    positional-map sidecars, cache entries and whole-query results each
    record the fingerprint of the file they were computed from, and are
    auto-invalidated (rebuilt from the raw bytes) when the file no longer
    matches instead of returning garbage.

    A fingerprint is the file size plus MD5 digests of the first and last
    4 KiB windows. The mtime is deliberately not part of it: the stdlib
    exposes no portable stat (Unix is not a dependency of this tree), and
    content digests also catch same-size in-place rewrites that mtime
    granularity can miss. *)

type t = { size : int; head : string; tail : string }
(** [head]/[tail] are raw 16-byte MD5 digests of the boundary windows. *)

(** [of_contents s] fingerprints in-memory bytes. *)
val of_contents : string -> t

(** [of_buffer buf] fingerprints a raw buffer (forces it; counts as a raw
    read). *)
val of_buffer : Raw_buffer.t -> t

(** [probe path] fingerprints a file directly — no {!Io_stats} accounting,
    no buffer load. [None] when the file cannot be read. *)
val probe : string -> t option

val equal : t -> t -> bool

(** Fixed-width binary form for sidecars and cache tags. *)
val encoded_size : int

val encode : t -> string

(** [decode s ~pos] reads an encoded fingerprint; [None] if out of range. *)
val decode : string -> pos:int -> t option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
