(** Positional maps for CSV files (paper §5; NoDB).

    A positional map stores binary positions of fields inside a raw text
    file so later queries navigate directly instead of re-tokenizing. It is
    built {e lazily}: registering a file only scans row boundaries (one
    cheap pass); column positions are recorded as queries touch columns.
    A probe for column [c] seeks to the nearest recorded column [c' <= c]
    and tokenizes only the [c - c'] intervening fields — the partial-map
    behaviour whose cost the optimizer models.

    The map is an auxiliary structure: dropping it at any time only costs
    performance (paper §2.1 invalidation). *)

type t

(** [build ?delim ?header ?domains buf] scans row boundaries (quote-aware)
    and the header line if [header] (default [true]). With [domains > 1]
    and a file above the parallel-bytes floor, the scan is chunked across
    domains (a quote-parity prepass gives each chunk its starting state)
    and the per-chunk boundaries are stitched in file order — the
    resulting map is byte-identical to a sequential build. *)
val build : ?delim:char -> ?header:bool -> ?domains:int -> Raw_buffer.t -> t

val row_count : t -> int
val column_names : t -> string list  (** empty when the file has no header *)

val delim : t -> char

(** [row_bounds t row] is the [(start, stop)] byte range of a data row
    (0-based, excluding the header), newline excluded. *)
val row_bounds : t -> int -> int * int

(** [populate t cols] records positions of [cols] (0-based indices) for all
    rows in one pass. Idempotent per column. *)
val populate : t -> int list -> unit

(** [populated_columns t] is the sorted list of recorded column indices.
    Column 0 is implicitly always available (row starts). *)
val populated_columns : t -> int list

(** [field t ~row ~col] extracts one field's text, navigating via the map.
    Counts an [index_probe] plus the fields actually tokenized.
    @raise Vida_error.Error ([Invalid_request]) if [row] is out of range. *)
val field : t -> row:int -> col:int -> string

(** [fields t ~row ~cols] extracts several columns of one row; [cols] need
    not be sorted. More efficient than repeated [field] for ascending
    runs. *)
val fields : t -> row:int -> cols:int list -> string array

(** [record_while_scanning t ~cols f] streams every row in file order,
    calling [f row fields] with the requested columns, and records their
    positions as a side effect (the NoDB "piggy-backed" build). *)
val record_while_scanning : t -> cols:int list -> (int -> string array -> unit) -> unit

(** Approximate memory footprint in bytes, for cache accounting. *)
val footprint : t -> int

(** {1 Incremental repair}

    When a data file grew by append (its old prefix unchanged — see
    {!Delta}), the map over the prefix stays valid and can be extended
    instead of rebuilt. *)

(** [extend t buf] extends a map built over the old prefix of [buf] to
    cover the appended tail: the rescan resumes from the start of the
    last old row (which may have been partial), old rows and their
    populated column offsets carry over verbatim, and only tail rows are
    tokenized. Produces exactly what [build] over [buf] followed by
    [populate] of the same columns would. *)
val extend : t -> Raw_buffer.t -> t

(** structural equality over everything derived (rows, header, populated
    offsets) — the differential oracle for incremental-vs-full tests. *)
val equal_structure : t -> t -> bool

(** {1 Persistence}

    A positional map is pure navigation metadata, so it can outlive the
    process: [save] publishes a sidecar through {!Atomic_sidecar}
    (temp+rename, per-frame CRC32, generation counter) stamped with a
    {!Fingerprint} of the data it was built from; [load] restores it,
    returning [Error (Stale_auxiliary _)] when the sidecar is missing,
    torn/corrupt (in which case it is also quarantined aside), internally
    inconsistent (row/column arrays of different lengths or offsets
    outside the data file), or was built against a different version of
    the data file. Callers treat any [Error] as "rebuild from raw" — the
    paper's §2.1 auxiliary-structure invalidation. *)

val save : t -> path:string -> unit

val load : ?delim:char -> Raw_buffer.t -> path:string -> (t, Vida_error.t) result
