(** Morsel-driven work scheduling on OCaml 5 domains.

    Worker domains pull morsel indices from a shared counter and deposit
    each result into an ordered, morsel-indexed array, so callers can
    merge partial results in source order (correct even for
    non-commutative monoids). Every morsel re-installs the owning
    query's governor session and epoch: deadlines, cancellation, budget
    charges and source-change probes are enforced inside every domain,
    against the owning query's shared counters.

    Regions execute in one of two modes:
    - {e per-region} (default): [run] spawns [domains - 1] short-lived
      worker domains for its region and joins them — one query at a
      time, the original behaviour;
    - {e shared pool} ({!Pool.set_shared}): regions from many concurrent
      queries are multiplexed over one set of long-lived worker domains
      with per-session fair-share scheduling. *)

(** [override ()] is the [VIDA_DOMAINS] environment override, if set to a
    positive integer. Snapshotted {e once at module initialization}: a
    mid-run environment mutation can never change pool sizing between
    sessions. *)
val override : unit -> int option

(** [recommended ()] is [Domain.recommended_domain_count ()], likewise
    snapshotted once at startup (bench metadata records both). *)
val recommended : unit -> int

(** [resolve ?requested ()] resolves a domain count: [VIDA_DOMAINS] wins;
    else an explicit [requested] clamped to the startup-cached hardware
    count; else the hardware count. Always at least 1. *)
val resolve : ?requested:int -> unit -> int

(** [default_domains ()] = [resolve ()]. *)
val default_domains : unit -> int

(** Work-size floors below which parallel regions run sequentially.
    Settable so tests can force parallelism on tiny inputs. *)
val set_min_parallel_rows : int -> unit

val set_min_parallel_bytes : int -> unit

(** [domains_for_rows ~domains rows] clamps [domains] for a region of
    [rows] work items: 1 if below the row floor, never more than [rows]. *)
val domains_for_rows : domains:int -> int -> int

(** [domains_for_bytes ~domains bytes] is 1 if [bytes] is below the byte
    floor, else [domains]. *)
val domains_for_bytes : domains:int -> int -> int

(** [chunks n parts] splits [0, n) into at most [parts] contiguous
    [(lo, hi)] ranges covering it exactly, in order. *)
val chunks : int -> int -> (int * int) array

(** A long-lived, server-owned worker-domain pool scheduling morsels
    {e across} concurrent queries.

    Fair share: workers always claim the next morsel from the runnable
    region whose owning governor session has consumed the fewest morsel
    quanta (counts reset when the pool drains), so a long scan cannot
    starve point queries. The submitting caller participates in its own
    region, which makes completion independent of pool capacity: a
    saturated or zero-worker pool degrades to caller-sequential
    execution — no deadlock, no cross-query blocking. A region always
    unregisters itself (even when a morsel raises or its client dies
    with the query), so a killed query can never leak a pool slot. *)
module Pool : sig
  type t

  (** [create ?domains ()] spawns [resolve ?requested:domains () - 1]
      long-lived worker domains (the submitting caller is each region's
      +1). A 1-domain resolution yields a zero-worker pool that is still
      fully functional. *)
  val create : ?domains:int -> unit -> t

  (** [shutdown t] stops and joins the worker domains. Must not be called
      while regions are active. *)
  val shutdown : t -> unit

  type stats = {
    workers : int;  (** worker domains owned by the pool *)
    active_regions : int;  (** regions currently registered *)
    inflight : int;  (** morsels currently executing on pool workers *)
    executed : int;  (** morsels pool workers have run, lifetime *)
    sessions_served : int;  (** distinct governor sessions seen, lifetime *)
  }

  val stats : t -> stats

  (** [idle t] — no region registered: every admitted query released its
      slot (the soak's leak check). *)
  val idle : t -> bool

  val size : t -> int

  (** [run_region t ~max_helpers ~tasks f] executes one region over the
      pool: the caller drives its own morsels, at most [max_helpers] pool
      workers help concurrently. Same result/failure contract as
      {!run}. *)
  val run_region : t -> max_helpers:int -> tasks:int -> (int -> 'a) -> 'a array
end

(** [set_shared_pool (Some p)] routes every subsequent multi-domain
    {!run} region through [p] instead of spawning per-region domains —
    the serving layer installs its pool here at startup. [None] restores
    per-region spawning. *)
val set_shared_pool : Pool.t option -> unit

val shared_pool : unit -> Pool.t option

(** [run ~domains ~tasks f] computes [f i] for every [i] in [0, tasks)
    and returns the results in task order. With [domains <= 1] (or a
    single task) everything runs in the calling domain; otherwise the
    region executes on the shared pool when one is installed (with
    [domains - 1] as its helper cap), or on [domains - 1] freshly
    spawned domains with the caller participating. If any task raises,
    remaining morsels are abandoned at the next boundary and the
    lowest-index exception is re-raised in the caller. *)
val run : domains:int -> tasks:int -> (int -> 'a) -> 'a array
