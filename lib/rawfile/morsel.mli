(** Morsel-driven work scheduling on OCaml 5 domains.

    Worker domains pull morsel indices from a shared atomic counter and
    deposit each result into an ordered, morsel-indexed array, so callers
    can merge partial results in source order (correct even for
    non-commutative monoids). Workers re-install the caller's governor
    session: deadlines, cancellation and budget charges are enforced
    inside every domain, against the same shared counters. *)

(** [override ()] is the [VIDA_DOMAINS] environment override, if set to a
    positive integer (read once, at first use). *)
val override : unit -> int option

(** [resolve ?requested ()] resolves a domain count: [VIDA_DOMAINS] wins;
    else an explicit [requested] clamped to
    [Domain.recommended_domain_count ()]; else the hardware count. Always
    at least 1. *)
val resolve : ?requested:int -> unit -> int

(** [default_domains ()] = [resolve ()]. *)
val default_domains : unit -> int

(** Work-size floors below which parallel regions run sequentially.
    Settable so tests can force parallelism on tiny inputs. *)
val set_min_parallel_rows : int -> unit

val set_min_parallel_bytes : int -> unit

(** [domains_for_rows ~domains rows] clamps [domains] for a region of
    [rows] work items: 1 if below the row floor, never more than [rows]. *)
val domains_for_rows : domains:int -> int -> int

(** [domains_for_bytes ~domains bytes] is 1 if [bytes] is below the byte
    floor, else [domains]. *)
val domains_for_bytes : domains:int -> int -> int

(** [chunks n parts] splits [0, n) into at most [parts] contiguous
    [(lo, hi)] ranges covering it exactly, in order. *)
val chunks : int -> int -> (int * int) array

(** [run ~domains ~tasks f] computes [f i] for every [i] in [0, tasks)
    and returns the results in task order. With [domains <= 1] (or a
    single task) everything runs in the calling domain; otherwise
    [domains - 1] extra domains are spawned and the caller participates.
    If any task raises, remaining morsels are abandoned at the next
    boundary and the lowest-index exception is re-raised in the caller. *)
val run : domains:int -> tasks:int -> (int -> 'a) -> 'a array
