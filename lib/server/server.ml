open Vida_data
module G = Vida_governor.Governor
module Morsel = Vida_raw.Morsel

type address = Tcp of { host : string; port : int } | Unix_socket of string

type config = {
  address : address;
  admission : G.Admission.config;
  pool_domains : int option;
  executors : int option;
  max_frame_bytes : int;
  idle_timeout_ms : float option;
  frame_timeout_ms : float option;
  write_timeout_ms : float option;
  drain_ms : float;
}

let default_config =
  { address = Tcp { host = "127.0.0.1"; port = 0 };
    admission = G.Admission.default_config; pool_domains = None;
    executors = None; max_frame_bytes = Frame.default_max_bytes;
    idle_timeout_ms = None; frame_timeout_ms = Some 10_000.;
    write_timeout_ms = Some 10_000.; drain_ms = 0. }

(* A parsed query request frame. *)
type request = {
  req_id : Value.t;  (* echoed verbatim in the response *)
  query : string;
  syntax : [ `Comp | `Sql ];
  tenant : string option;  (* admission accounting; connection default else *)
  deadline_ms : float option;
      (* the client's remaining budget across its retries; caps the
         queue wait and the query deadline (never widens them) *)
}

(* One admitted query travelling from a connection thread to an executor
   domain and back. Queries must run on a domain of their own — the
   governor session and epoch are ambient per {e domain}, while every
   connection thread shares domain 0 — so connection threads only do
   socket IO and hand the work to the executor pool. *)
type job = {
  run : unit -> string;
  mutable reply : string option;
  j_lock : Vida_sync.Lock.t;
  j_done : Condition.t;
}

type conn = { c_fd : Unix.file_descr; c_thread : Thread.t }

type t = {
  db : Vida.t;
  config : config;
  adm : G.Admission.t;
  pool : Morsel.Pool.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  queue : job Queue.t;
  lock : Vida_sync.Lock.t;
  work : Condition.t;
  mutable stopping : bool;
  mutable execs : unit Domain.t list;
  mutable acceptor : Thread.t option;
  mutable conns : conn list;
  mutable served : int;
  mutable shed : int;
  mutable disconnect_cancels : int;
  mutable idle_reaped : int;
  mutable slow_frame_drops : int;
  mutable write_timeouts : int;
  mutable pings : int;
}

type stats = {
  admission : G.Admission.gauges;
  pool : Morsel.Pool.stats;
  active_connections : int;
  served : int;
  shed : int;
  disconnect_cancels : int;
  idle_reaped : int;
  slow_frame_drops : int;
  write_timeouts : int;
  pings : int;
  breakers : G.Breaker.snapshot list;
}

(* SIGPIPE would kill the whole process when a peer closes mid-write;
   ignoring it turns the condition into [EPIPE], which {!Frame} reports
   as a typed disconnect. Idempotent; a no-op on platforms without it. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* --- response payloads --- *)

let field name v rest = (name, v) :: rest

let respond fields = Value.to_json (Value.Record fields)

(* FNV-1a over canonical JSON text, masked to 62 bits (a [Value.Int]).
   End-to-end integrity tag for the payloads that matter: a request
   carries the checksum of its query text ([q_crc]) and an ok reply the
   checksum of its value ([v_crc]). TCP's own checksum is per-hop; a
   fault-injecting proxy (or a flaky middlebox) can flip bits that still
   parse as valid JSON, and without these tags a corrupted-but-parseable
   answer would be silently accepted. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let ok_payload req_id (r : Vida.result) =
  respond
    (field "id" req_id
    @@ field "status" (Value.String "ok")
    @@ field "cache"
         (Value.String (if r.Vida.plan_from_cache then "hit" else "miss"))
    @@ field "result_cache"
         (Value.String (if r.Vida.from_result_cache then "hit" else "miss"))
    @@ field "compile_ms" (Value.Float r.Vida.compile_ms)
    @@ field "exec_ms" (Value.Float r.Vida.exec_ms)
    @@ field "v_crc" (Value.Int (fnv64 (Value.to_json r.Vida.value)))
    @@ field "value" r.Vida.value [])

let data_error_payload req_id (e : Vida_error.t) =
  let base tail =
    field "id" req_id
    @@ field "status" (Value.String "error")
    @@ field "kind" (Value.String (Vida_error.kind_name e))
    @@ field "code" (Value.Int (Vida_error.exit_code e))
    @@ field "message" (Value.String (Vida_error.to_string e)) tail
  in
  match e with
  | Vida_error.Overloaded { retry_after_ms; _ }
  | Vida_error.Source_unavailable { retry_after_ms; _ } ->
    (* the protocol's Retry-After: clients back off this long before
       resubmitting a shed query (admission shed or open breaker) *)
    respond (base @@ field "retry_after_ms" (Value.Float retry_after_ms) [])
  | _ -> respond (base [])

let error_payload req_id (e : Vida.error) =
  match e with
  | Vida.Data_error de -> data_error_payload req_id de
  | Vida.Parse_error _ | Vida.Type_error _ | Vida.Engine_error _ ->
    let kind, code =
      match e with
      | Vida.Parse_error _ -> ("parse", 65)
      | Vida.Type_error _ -> ("type", 74)
      | _ -> ("engine", 70)
    in
    respond
      (field "id" req_id
      @@ field "status" (Value.String "error")
      @@ field "kind" (Value.String kind)
      @@ field "code" (Value.Int code)
      @@ field "message" (Value.String (Vida.error_to_string e)) [])

let bad_request_payload msg =
  respond
    (field "id" Value.Null
    @@ field "status" (Value.String "error")
    @@ field "kind" (Value.String "invalid")
    @@ field "code" (Value.Int 70)
    @@ field "message" (Value.String msg) [])

(* the request arrived parseable but its integrity tag does not match:
   bits flipped in transit. A distinct kind so a self-healing client
   knows to resubmit, where plain "invalid" means the sender is buggy. *)
let corrupt_request_payload req_id =
  respond
    (field "id" req_id
    @@ field "status" (Value.String "error")
    @@ field "kind" (Value.String "corrupt")
    @@ field "code" (Value.Int 65)
    @@ field "message"
         (Value.String "request corrupted in transit (checksum mismatch)") [])

let pong_payload req_id =
  respond (field "id" req_id @@ field "status" (Value.String "pong") [])

(* --- request parsing --- *)

let parse_request payload =
  match Vida_raw.Json.parse ~source:"request" payload with
  | exception Vida_error.Error e -> `Bad (Vida_error.to_string e)
  | Value.Record _ as v -> (
    let req_id = Option.value (Value.field_opt v "id") ~default:Value.Null in
    match Value.field_opt v "op" with
    | Some (Value.String "ping") -> `Ping req_id
    | Some (Value.String "health") -> `Health req_id
    | Some other ->
      `Bad
        (Printf.sprintf "unknown op %s (want \"ping\" or \"health\")"
           (Value.to_json other))
    | None -> (
      match Value.field_opt v "query" with
      | Some (Value.String query) -> (
        let syntax =
          match Value.field_opt v "syntax" with
          | Some (Value.String "sql") -> Ok `Sql
          | Some (Value.String "comp") | None -> Ok `Comp
          | Some other ->
            Error
              (Printf.sprintf "unknown syntax %s (want \"comp\" or \"sql\")"
                 (Value.to_json other))
        in
        match syntax with
        | Error msg -> `Bad msg
        | Ok _
          when match Value.field_opt v "q_crc" with
               | Some (Value.Int crc) -> crc <> fnv64 query
               | _ -> false -> `Corrupt req_id
        | Ok syntax ->
          `Query
            { req_id; query; syntax;
              tenant =
                (match Value.field_opt v "tenant" with
                | Some (Value.String s) -> Some s
                | _ -> None);
              deadline_ms =
                (match Value.field_opt v "deadline_ms" with
                | Some (Value.Float f) when f > 0. -> Some f
                | Some (Value.Int i) when i > 0 -> Some (float_of_int i)
                | _ -> None) })
      | Some _ -> `Bad "request field \"query\" must be a string"
      | None -> `Bad "request lacks a \"query\" field"))
  | _ -> `Bad "request frame must be a JSON object"

(* --- health report (op: "health") --- *)

let health_payload srv req_id =
  let adm = G.Admission.gauges srv.adm in
  let served, shed, disconnect_cancels, idle_reaped, slow_frames, wto, pings,
      active =
    Vida_sync.Lock.protect srv.lock (fun () ->
        ( srv.served, srv.shed, srv.disconnect_cancels, srv.idle_reaped,
          srv.slow_frame_drops, srv.write_timeouts, srv.pings,
          List.length srv.conns ))
  in
  let breakers =
    Value.List
      (List.map
         (fun (b : G.Breaker.snapshot) ->
           Value.Record
             [ ("source", Value.String b.G.Breaker.b_source);
               ("state", Value.String b.G.Breaker.b_state);
               ("trips", Value.Int b.G.Breaker.b_trips);
               ("shed", Value.Int b.G.Breaker.b_shed) ])
         (G.Breaker.snapshot ()))
  in
  let vectorized =
    let vs = Vida.vector_stats () in
    Value.Record
      [ ("kernels", Value.Int vs.Vida_engine.Vector.kernels);
        ("batches_executed", Value.Int vs.Vida_engine.Vector.batches);
        ("rows", Value.Int vs.Vida_engine.Vector.rows);
        ("rows_per_batch_p50", Value.Int vs.Vida_engine.Vector.batch_rows_p50);
        ("vector_fallbacks", Value.Int vs.Vida_engine.Vector.fallbacks);
        ("fallback_reasons",
         Value.List
           (List.map
              (fun r -> Value.String r)
              vs.Vida_engine.Vector.last_fallbacks)) ]
  in
  let sync =
    let sc = Vida_sync.counters () in
    Value.Record
      [ ("mode",
         Value.String
           (match Vida_sync.mode () with
           | Vida_sync.Off -> "off"
           | Vida_sync.Warn -> "warn"
           | Vida_sync.Strict -> "strict"));
        ("locks", Value.Int sc.Vida_sync.locks);
        ("cells", Value.Int sc.Vida_sync.cells);
        ("race_allowed", Value.Int sc.Vida_sync.race_allowed);
        ("kernel_checks", Value.Int sc.Vida_sync.kernel_checks);
        ("rank_inversions", Value.Int sc.Vida_sync.rank_inversions);
        ("reentries", Value.Int sc.Vida_sync.reentries);
        ("lock_cycles", Value.Int sc.Vida_sync.lock_cycles);
        ("unlocked_accesses", Value.Int sc.Vida_sync.unlocked_accesses);
        ("unheld_locks", Value.Int sc.Vida_sync.unheld_locks);
        ("kernel_failures", Value.Int sc.Vida_sync.kernel_failures);
        ("findings_total", Value.Int sc.Vida_sync.total) ]
  in
  (* durable-state health: operators watch [degraded] (persistence
     suspended on a full disk — queries unaffected) and the counters that
     prove warm boots are actually reusing state *)
  let state =
    match Vida.state_report srv.db with
    | None -> Value.Record [ ("enabled", Value.Bool false) ]
    | Some sr ->
      Value.Record
        [ ("enabled", Value.Bool true);
          ("dir", Value.String sr.Vida.sr_dir);
          ("degraded", Value.Bool sr.Vida.sr_degraded);
          ("persists", Value.Int sr.Vida.sr_persists);
          ("persist_failures", Value.Int sr.Vida.sr_persist_failures);
          ("warm_loads", Value.Int sr.Vida.sr_warm_loads);
          ("corrupt_quarantined", Value.Int sr.Vida.sr_corrupt_quarantined);
          ("plan_warm_hits", Value.Int sr.Vida.sr_plan_warm_hits);
          ("structure_restores", Value.Int sr.Vida.sr_structure_restores);
          ("structure_rebuilds", Value.Int sr.Vida.sr_structure_rebuilds) ]
  in
  respond
    (field "id" req_id
    @@ field "status" (Value.String "ok")
    @@ field "health"
         (Value.Record
            [ ("running", Value.Int adm.G.Admission.running);
              ("queued", Value.Int adm.G.Admission.queued);
              ("reserved_bytes", Value.Int adm.G.Admission.reserved_bytes);
              ("admitted_total", Value.Int adm.G.Admission.admitted_total);
              ("shed_total", Value.Int adm.G.Admission.shed_total);
              ("active_connections", Value.Int active);
              ("served", Value.Int served);
              ("shed", Value.Int shed);
              ("disconnect_cancels", Value.Int disconnect_cancels);
              ("idle_reaped", Value.Int idle_reaped);
              ("slow_frame_drops", Value.Int slow_frames);
              ("write_timeouts", Value.Int wto);
              ("pings", Value.Int pings);
              ("breakers", breakers);
              ("vectorized", vectorized);
              ("state", state);
              ("sync", sync) ])
         [])

(* --- the query path (runs on an executor domain, post-admission) --- *)

let execute srv session req =
  (* degradation ladder: under elevated pressure every query runs
     sequentially — no shared-pool fan-out — so the worker domains serve
     admitted queries instead of amplifying the backlog *)
  let domains =
    match G.Admission.pressure srv.adm with
    | `Normal -> None
    | `Elevated -> Some 1
  in
  let outcome =
    Vida.submit ?domains ?deadline_ms:req.deadline_ms ~syntax:req.syntax
      session req.query
  in
  Vida_sync.Lock.protect srv.lock (fun () -> srv.served <- srv.served + 1);
  (* durable warm state rides the query path, debounced: newly derived
     plans / breaker verdicts / ledgers reach the state directory within
     a second of being learned, so a kill -9 at any later instant boots
     warm. No-op without a state directory; a persist failure degrades to
     no-persist mode inside and never surfaces to this client *)
  ignore (Vida.maybe_persist srv.db);
  match outcome with
  | Ok r -> ok_payload req.req_id r
  | Error e -> error_payload req.req_id e

(* --- executor domains --- *)

let exec_loop srv () =
  let rec next () =
    Vida_sync.Lock.lock srv.lock;
    (* drain-before-exit: a job enqueued before [stopping] flipped must
       still get a reply, or its connection thread would await forever *)
    let rec claim () =
      match Queue.take_opt srv.queue with
      | Some job ->
        Vida_sync.Lock.unlock srv.lock;
        Some job
      | None ->
        if srv.stopping then (
          Vida_sync.Lock.unlock srv.lock;
          None)
        else (
          Vida_sync.Lock.wait srv.work srv.lock;
          claim ())
    in
    match claim () with
    | None -> ()
    | Some job ->
      let reply =
        try job.run ()
        with e ->
          (* a worker exception must never take the executor domain down:
             the session that submitted the query gets a typed report and
             every other session is untouched *)
          bad_request_payload ("internal error: " ^ Printexc.to_string e)
      in
      Vida_sync.Lock.protect job.j_lock (fun () ->
          job.reply <- Some reply;
          Condition.broadcast job.j_done);
      next ()
  in
  next ()

let submit_job srv run =
  let job =
    { run; reply = None;
      j_lock = Vida_sync.Lock.create ~rank:30 ~name:"server.job" ();
      j_done = Condition.create () }
  in
  Vida_sync.Lock.protect srv.lock (fun () ->
      if srv.stopping then
        (* refused, answered inline: after [stopping] no executor is
           guaranteed to ever claim the queue again *)
        job.reply <- Some (bad_request_payload "server shutting down")
      else (
        Queue.add job srv.queue;
        Condition.signal srv.work));
  job

(* The peer closed its end iff the socket selects readable and a MSG_PEEK
   recv returns 0 bytes. Data arriving mid-query (an eager pipelined
   request) selects readable too and simply stays buffered. *)
let peer_gone fd =
  match Unix.select [ fd ] [] [] 0. with
  | [], _, _ -> false
  | _ -> (
    let b = Bytes.create 1 in
    match Unix.recv fd b 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    | exception Unix.Unix_error _ -> true)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  | exception Unix.Unix_error _ -> true

(* --- connection handling (systhreads: socket IO and cancellation only) --- *)

let handle_conn srv fd =
  let session =
    Vida.open_session srv.db
      ~name:(Printf.sprintf "conn-%d" (Thread.id (Thread.self ())))
  in
  let cfg = srv.config in
  let bump f = Vida_sync.Lock.protect srv.lock f in
  let rec serve () =
    match
      Frame.read ~max_bytes:cfg.max_frame_bytes
        ?idle_timeout_ms:cfg.idle_timeout_ms
        ?frame_timeout_ms:cfg.frame_timeout_ms fd
    with
    | exception Frame.Timeout `Idle ->
      (* idle-session reaping: quiet past the policy bound — drop it and
         free the connection thread (clients reconnect transparently) *)
      bump (fun () -> srv.idle_reaped <- srv.idle_reaped + 1)
    | exception Frame.Timeout (`Stalled_frame | `Write) ->
      (* slowloris: a frame started and stalled mid-way *)
      bump (fun () -> srv.slow_frame_drops <- srv.slow_frame_drops + 1)
    | None -> ()
    | Some payload ->
      let reply =
        match parse_request payload with
        | `Bad msg -> Some (bad_request_payload msg)
        | `Corrupt req_id -> Some (corrupt_request_payload req_id)
        | `Ping req_id ->
          bump (fun () -> srv.pings <- srv.pings + 1);
          Some (pong_payload req_id)
        | `Health req_id -> Some (health_payload srv req_id)
        | `Query req -> (
          (* admission happens HERE, on the connection thread: the
             bounded front door must see the whole offered load, so shed
             decisions cannot hide behind a busy executor. With
             [executors >= max_concurrent], an admitted query never waits
             for an executor either. *)
          let tenant =
            Option.value req.tenant ~default:(Vida.session_tenant session)
          in
          let limits = Vida.limits srv.db in
          (* the queue wait is bounded by the sooner of the configured
             deadline and the client's remaining budget *)
          let adm_deadline =
            match (req.deadline_ms, limits.G.deadline_ms) with
            | Some a, Some b -> Some (Float.min a b)
            | (Some _ as d), None | None, d -> d
          in
          match
            G.Admission.admit ?deadline_ms:adm_deadline srv.adm ~tenant
              ~reserve:(Option.value limits.G.memory_budget ~default:0)
          with
          | exception Vida_error.Error (Vida_error.Overloaded _ as e) ->
            Vida_sync.Lock.protect srv.lock (fun () -> srv.shed <- srv.shed + 1);
            Some (data_error_payload req.req_id e)
          | ticket ->
          let job =
            submit_job srv (fun () ->
                (* the slot is returned on every completion path — a
                   failing query, a cancelled one, a dead client *)
                Fun.protect
                  ~finally:(fun () -> G.Admission.release srv.adm ticket)
                  (fun () -> execute srv session req))
          in
          (* wait for the executor; watch the socket meanwhile so a
             client that dies mid-query cancels its work instead of
             occupying an admission slot until completion *)
          let cancelled = ref false in
          let rec await () =
            match Vida_sync.Lock.protect job.j_lock (fun () -> job.reply) with
            | Some r -> if !cancelled then None else Some r
            | None ->
              if (not !cancelled) && peer_gone fd then (
                cancelled := true;
                Vida.cancel session ~reason:"client disconnected";
                Vida_sync.Lock.protect srv.lock (fun () ->
                    srv.disconnect_cancels <- srv.disconnect_cancels + 1));
              Thread.delay 0.002;
              await ()
          in
          await ())
      in
      (match reply with
      | Some r -> (
        match Frame.write ?timeout_ms:cfg.write_timeout_ms fd r with
        | () -> serve ()
        | exception Frame.Timeout `Write ->
          (* a reader too slow to drain its own reply would pin this
             thread (and its buffers) forever: drop it *)
          bump (fun () -> srv.write_timeouts <- srv.write_timeouts + 1)
        | exception Frame.Timeout (`Idle | `Stalled_frame) -> ())
      | None -> (* client gone; its query was cancelled *) ())
  in
  (try serve () with
  | Vida_error.Error _ -> () (* framing violation: drop the connection *)
  | Unix.Unix_error _ -> ());
  Vida.close_session session;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* Each connection thread registers itself (so [stop] can force it to
   EOF and join it) and prunes itself on exit (so [active_connections] is
   a live gauge, not a high-water mark). Registration is refused once
   [stopping] is set: [stop] snapshots the registry after joining the
   acceptor, and a late connection that raced the shutdown must not slip
   past that snapshot unjoinable. *)
let conn_main srv fd () =
  let me = { c_fd = fd; c_thread = Thread.self () } in
  let registered =
    Vida_sync.Lock.protect srv.lock (fun () ->
        if srv.stopping then false
        else (
          srv.conns <- me :: srv.conns;
          true))
  in
  if not registered then (try Unix.close fd with Unix.Unix_error _ -> ())
  else (
    handle_conn srv fd;
    Vida_sync.Lock.protect srv.lock (fun () ->
        srv.conns <- List.filter (fun c -> c != me) srv.conns))

let accept_loop srv () =
  let rec loop () =
    match Unix.accept srv.listen_fd with
    | fd, _ ->
      ignore (Thread.create (conn_main srv fd) ());
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* a signal (SIGCHLD, a profiler tick) interrupted accept: not a
         shutdown *)
      loop ()
    | exception
        Unix.Unix_error
          ((Unix.EMFILE | Unix.ENFILE | Unix.ECONNABORTED | Unix.ENOMEM), _, _)
      ->
      (* transient resource exhaustion (fd table full, client hung up
         mid-handshake). Exiting here would silently kill the acceptor —
         the server would look alive while refusing everyone forever.
         Back off briefly; connections draining frees fds *)
      if
        Vida_sync.Lock.protect srv.lock (fun () -> srv.stopping)
      then ()
      else (
        Thread.delay 0.05;
        loop ())
    | exception Unix.Unix_error _ -> () (* listener closed: shutting down *)
  in
  loop ()

(* --- lifecycle --- *)

(* A Unix socket file left by an uncleanly-killed server makes a naive
   bind fail with EADDRINUSE forever. Probe it: connection refused means
   nobody is accepting — a stale file from a crash, safe to unlink; a
   successful connect means a live server owns it, and replacing it
   underneath would silently steal its clients. *)
let remove_stale_unix_socket path =
  if Sys.file_exists path then (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> `Live
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
          | exception Unix.Unix_error (e, _, _) -> `Error e)
    in
    match verdict with
    | `Stale -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Gone -> ()
    | `Live -> raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
    | `Error e -> raise (Unix.Unix_error (e, "connect", path)))

let bind_address address =
  match address with
  | Tcp { host; port } ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd
  | Unix_socket path ->
    remove_stale_unix_socket path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd

let create ?(config = default_config) db =
  ignore_sigpipe ();
  let pool = Morsel.Pool.create ?domains:config.pool_domains () in
  Morsel.set_shared_pool (Some pool);
  let adm = G.Admission.create ~config:config.admission () in
  let listen_fd = bind_address config.address in
  Unix.listen listen_fd 64;
  let srv =
    { db; config; adm; pool; listen_fd; bound = Unix.getsockname listen_fd;
      queue = Queue.create ();
      lock = Vida_sync.Lock.create ~rank:20 ~name:"server.instance" ();
      work = Condition.create (); stopping = false; execs = []; acceptor = None;
      conns = []; served = 0; shed = 0; disconnect_cancels = 0;
      idle_reaped = 0; slow_frame_drops = 0; write_timeouts = 0; pings = 0 }
  in
  let executors =
    match config.executors with
    | Some n -> max 1 n
    | None -> max 1 config.admission.G.Admission.max_concurrent
  in
  srv.execs <- List.init executors (fun _ -> Domain.spawn (exec_loop srv));
  srv.acceptor <- Some (Thread.create (accept_loop srv) ());
  srv

let address srv =
  match srv.bound with
  | Unix.ADDR_INET (host, port) ->
    Tcp { host = Unix.string_of_inet_addr host; port }
  | Unix.ADDR_UNIX path -> Unix_socket path

let stats srv =
  let ( active_connections, served, shed, disconnect_cancels, idle_reaped,
        slow_frame_drops, write_timeouts, pings ) =
    Vida_sync.Lock.protect srv.lock (fun () ->
        ( List.length srv.conns, srv.served, srv.shed, srv.disconnect_cancels,
          srv.idle_reaped, srv.slow_frame_drops, srv.write_timeouts, srv.pings ))
  in
  { admission = G.Admission.gauges srv.adm; pool = Morsel.Pool.stats srv.pool;
    active_connections; served; shed; disconnect_cancels; idle_reaped;
    slow_frame_drops; write_timeouts; pings;
    breakers = G.Breaker.snapshot () }

let stop ?drain_ms srv =
  Vida_sync.Lock.protect srv.lock (fun () ->
      srv.stopping <- true;
      Condition.broadcast srv.work);
  (* wake the acceptor first: no NEW connections during the drain. Then
     [shutdown] before [close]: closing an fd does NOT interrupt a thread
     already blocked in [accept]/[read] on Linux — shutting it down does *)
  (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (match srv.acceptor with Some t -> Thread.join t | None -> ());
  (* graceful drain: in-flight queries (already enqueued jobs are still
     claimed and answered — [stopping] only refuses NEW submissions) may
     finish and have their replies written, up to the drain deadline;
     whatever is still running after it is cancelled cooperatively by the
     forced-EOF path below *)
  let drain =
    match drain_ms with Some d -> d | None -> srv.config.drain_ms
  in
  if drain > 0. then (
    let t0 = G.now_ms () in
    let busy () =
      let g = G.Admission.gauges srv.adm in
      g.G.Admission.running > 0 || g.G.Admission.queued > 0
      || Vida_sync.Lock.protect srv.lock (fun () -> not (Queue.is_empty srv.queue))
    in
    while busy () && G.now_ms () -. t0 < drain do
      Thread.delay 0.005
    done;
    (* the admission slot releases on query completion, slightly before
       the connection thread writes the reply: one beat for the flush *)
    Thread.delay 0.02);
  (* force every live connection to EOF so its thread unblocks from
     Frame.read and exits; a query still running past the drain deadline
     is cancelled cooperatively via the disconnect path *)
  let conns = Vida_sync.Lock.protect srv.lock (fun () -> srv.conns) in
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun c -> Thread.join c.c_thread) conns;
  Vida_sync.Lock.protect srv.lock (fun () ->
      srv.conns <- [];
      Condition.broadcast srv.work);
  List.iter Domain.join srv.execs;
  srv.execs <- [];
  (match Morsel.shared_pool () with
  | Some p when p == srv.pool -> Morsel.set_shared_pool None
  | _ -> ());
  Morsel.Pool.shutdown srv.pool;
  match srv.config.address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* --- client --- *)

module Client = struct
  type client = { fd : Unix.file_descr; mutable next_id : int }

  let rec connect_fd address =
    match address with
    | Tcp { host; port } -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
      with
      | () -> fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        connect_fd address
      | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)
    | Unix_socket path -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        connect_fd address
      | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)

  let connect address =
    ignore_sigpipe ();
    { fd = connect_fd address; next_id = 1 }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let roundtrip c payload =
    Frame.write c.fd payload;
    match Frame.read c.fd with
    | Some reply -> reply
    | None ->
      Vida_error.io_failure ~source:"client" "server closed the connection"

  let request_fields ?tenant ?deadline_ms ~syntax ~id text =
    field "id" id
    @@ field "query" (Value.String text)
    @@ field "q_crc" (Value.Int (fnv64 text))
    @@ field "syntax"
         (Value.String (match syntax with `Comp -> "comp" | `Sql -> "sql"))
         ((match deadline_ms with
          | Some ms -> field "deadline_ms" (Value.Float ms)
          | None -> Fun.id)
            (match tenant with
            | Some t -> field "tenant" (Value.String t) []
            | None -> []))

  let query ?tenant ?(syntax = `Comp) c text =
    let id = c.next_id in
    c.next_id <- id + 1;
    Vida_raw.Json.parse ~source:"response"
      (roundtrip c
         (respond (request_fields ?tenant ~syntax ~id:(Value.Int id) text)))

  (* heartbeat: a cheap liveness probe that also counts as activity
     against the server's idle reaper *)
  let ping c =
    let reply =
      Vida_raw.Json.parse ~source:"response"
        (roundtrip c (respond (field "op" (Value.String "ping") [])))
    in
    match Value.field_opt reply "status" with
    | Some (Value.String "pong") -> true
    | _ -> false

  let health c =
    Vida_raw.Json.parse ~source:"response"
      (roundtrip c (respond (field "op" (Value.String "health") [])))

  (* --- self-healing client ------------------------------------------- *)

  type retry_config = {
    max_attempts : int;  (* total tries per logical query *)
    base_backoff_ms : float;  (* doubled per retry *)
    max_backoff_ms : float;  (* cap on one backoff sleep *)
    deadline_ms : float option;  (* total budget across ALL attempts *)
    seed : int;  (* jitter determinism *)
  }

  let default_retry =
    { max_attempts = 5; base_backoff_ms = 50.; max_backoff_ms = 2000.;
      deadline_ms = None; seed = 0 }

  type resilient = {
    r_address : address;
    r_retry : retry_config;
    mutable r_conn : client option;
    mutable r_rng : int64;
    mutable r_next : int;
    mutable r_reconnects : int;
    mutable r_backoffs : int;
  }

  let connect_resilient ?(retry = default_retry) address =
    ignore_sigpipe ();
    { r_address = address; r_retry = retry; r_conn = None;
      r_rng = Int64.of_int ((retry.seed lxor 0x5eed) lor 1); r_next = 1;
      r_reconnects = 0; r_backoffs = 0 }

  let reconnects rc = rc.r_reconnects
  let backoffs rc = rc.r_backoffs

  let close_resilient rc =
    (match rc.r_conn with Some c -> close c | None -> ());
    rc.r_conn <- None

  (* splitmix64 step — seeded jitter, reproducible in tests *)
  let jitter rc =
    let open Int64 in
    rc.r_rng <- add rc.r_rng 0x9E3779B97F4A7C15L;
    let z = rc.r_rng in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    Int64.to_float (shift_right_logical z 11) /. 9007199254740992.

  let drop_conn rc =
    (match rc.r_conn with Some c -> close c | None -> ());
    rc.r_conn <- None

  let conn rc =
    match rc.r_conn with
    | Some c -> c
    | None ->
      let c = connect rc.r_address in
      rc.r_conn <- Some c;
      c

  (* [rquery rc text] — the resilient submit path. One stable request id
     per LOGICAL query (idempotent resubmission key: queries are
     read-only, so a resend after a torn reply is safe, and the id lets
     the server's logs correlate the attempts). Transport failures
     (connection refused/reset, torn frame, server gone) reconnect and
     resubmit; [Overloaded]/[Source_unavailable] refusals back off by
     max(retry_after_ms hint, bounded exponential backoff) with seeded
     jitter; the optional total deadline bounds the WHOLE attempt
     sequence, and the remaining budget rides every request frame as
     [deadline_ms] so the server never works past the client's patience. *)
  let rquery ?tenant ?(syntax = `Comp) rc text =
    let id =
      Value.String (Printf.sprintf "rq-%d-%d" (Unix.getpid ()) rc.r_next)
    in
    rc.r_next <- rc.r_next + 1;
    let t0 = G.now_ms () in
    let remaining () =
      Option.map
        (fun d -> d -. (G.now_ms () -. t0))
        rc.r_retry.deadline_ms
    in
    let out_of_budget () =
      match remaining () with Some r -> r <= 0. | None -> false
    in
    let backoff_for k hint =
      let exp =
        Float.min rc.r_retry.max_backoff_ms
          (rc.r_retry.base_backoff_ms *. (2. ** float_of_int k))
      in
      let base = Float.max exp hint in
      (* full jitter on the top half: desynchronizes a retrying herd *)
      let ms = base *. (0.5 +. (0.5 *. jitter rc)) in
      match remaining () with Some r -> Float.min ms (Float.max 0. r) | None -> ms
    in
    let give_up last_err =
      match last_err with
      | Some reply -> reply
      | None ->
        Vida_error.io_failure ~source:"client"
          "no reply after %d attempts%s" rc.r_retry.max_attempts
          (match rc.r_retry.deadline_ms with
          | Some d -> Printf.sprintf " within the %.0f ms budget" d
          | None -> "")
    in
    (* A reply is intact when its shape survived the wire: an ok reply
       must echo OUR id and carry a value whose integrity tag matches; an
       error reply must be typed. Kind ["corrupt"]/["invalid"] on a
       request WE built correctly means the request was mangled in
       transit. Anything non-intact is treated as a transport failure:
       reconnect (the stream may be desynchronized) and resubmit. *)
    let intact reply =
      match Value.field_opt reply "status" with
      | Some (Value.String "ok") -> (
        match
          ( Value.field_opt reply "id", Value.field_opt reply "value",
            Value.field_opt reply "v_crc" )
        with
        | Some rid, Some v, Some (Value.Int crc) ->
          rid = id && crc = fnv64 (Value.to_json v)
        | Some rid, Some _, None -> rid = id (* untagged: trust it *)
        | _ -> false)
      | Some (Value.String "error") -> (
        match Value.field_opt reply "kind" with
        | Some (Value.String ("corrupt" | "invalid")) -> false
        | Some (Value.String _) -> true
        | _ -> false)
      | _ -> false
    in
    let rec attempt k last_err =
      if k >= rc.r_retry.max_attempts || out_of_budget () then give_up last_err
      else
        match
          let c = conn rc in
          Vida_raw.Json.parse ~source:"response"
            (roundtrip c
               (respond
                  (request_fields ?tenant ?deadline_ms:(remaining ()) ~syntax
                     ~id text)))
        with
        | exception (Vida_error.Error _ | Unix.Unix_error _ | Frame.Timeout _)
          ->
          (* transport failure: reconnect and resubmit the SAME id *)
          drop_conn rc;
          rc.r_reconnects <- rc.r_reconnects + 1;
          if k + 1 < rc.r_retry.max_attempts && not (out_of_budget ()) then
            G.sleep_ms (backoff_for k 0.);
          attempt (k + 1) last_err
        | reply when not (intact reply) ->
          drop_conn rc;
          rc.r_reconnects <- rc.r_reconnects + 1;
          if k + 1 < rc.r_retry.max_attempts && not (out_of_budget ()) then
            G.sleep_ms (backoff_for k 0.);
          attempt (k + 1) last_err
        | reply -> (
          let retryable =
            match Value.field_opt reply "kind" with
            | Some (Value.String ("overloaded" | "unavailable")) -> true
            | _ -> false
          in
          match retryable with
          | false -> reply
          | true ->
            if k + 1 >= rc.r_retry.max_attempts || out_of_budget () then reply
            else (
              let hint =
                match Value.field_opt reply "retry_after_ms" with
                | Some (Value.Float f) -> f
                | Some (Value.Int i) -> float_of_int i
                | _ -> 0.
              in
              rc.r_backoffs <- rc.r_backoffs + 1;
              G.sleep_ms (backoff_for k hint);
              attempt (k + 1) (Some reply)))
    in
    attempt 0 None
end
