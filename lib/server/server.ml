open Vida_data
module G = Vida_governor.Governor
module Morsel = Vida_raw.Morsel

type address = Tcp of { host : string; port : int } | Unix_socket of string

type config = {
  address : address;
  admission : G.Admission.config;
  pool_domains : int option;
  executors : int option;
  max_frame_bytes : int;
}

let default_config =
  { address = Tcp { host = "127.0.0.1"; port = 0 };
    admission = G.Admission.default_config; pool_domains = None;
    executors = None; max_frame_bytes = Frame.default_max_bytes }

(* A parsed request frame. *)
type request = {
  req_id : Value.t;  (* echoed verbatim in the response *)
  query : string;
  syntax : [ `Comp | `Sql ];
  tenant : string option;  (* admission accounting; connection default else *)
}

(* One admitted query travelling from a connection thread to an executor
   domain and back. Queries must run on a domain of their own — the
   governor session and epoch are ambient per {e domain}, while every
   connection thread shares domain 0 — so connection threads only do
   socket IO and hand the work to the executor pool. *)
type job = {
  run : unit -> string;
  mutable reply : string option;
  j_lock : Mutex.t;
  j_done : Condition.t;
}

type conn = { c_fd : Unix.file_descr; c_thread : Thread.t }

type t = {
  db : Vida.t;
  config : config;
  adm : G.Admission.t;
  pool : Morsel.Pool.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  queue : job Queue.t;
  lock : Mutex.t;
  work : Condition.t;
  mutable stopping : bool;
  mutable execs : unit Domain.t list;
  mutable acceptor : Thread.t option;
  mutable conns : conn list;
  mutable served : int;
  mutable shed : int;
  mutable disconnect_cancels : int;
}

type stats = {
  admission : G.Admission.gauges;
  pool : Morsel.Pool.stats;
  active_connections : int;
  served : int;
  shed : int;
  disconnect_cancels : int;
}

(* --- response payloads --- *)

let field name v rest = (name, v) :: rest

let respond fields = Value.to_json (Value.Record fields)

let ok_payload req_id (r : Vida.result) =
  respond
    (field "id" req_id
    @@ field "status" (Value.String "ok")
    @@ field "cache"
         (Value.String (if r.Vida.plan_from_cache then "hit" else "miss"))
    @@ field "result_cache"
         (Value.String (if r.Vida.from_result_cache then "hit" else "miss"))
    @@ field "compile_ms" (Value.Float r.Vida.compile_ms)
    @@ field "exec_ms" (Value.Float r.Vida.exec_ms)
    @@ field "value" r.Vida.value [])

let data_error_payload req_id (e : Vida_error.t) =
  let base tail =
    field "id" req_id
    @@ field "status" (Value.String "error")
    @@ field "kind" (Value.String (Vida_error.kind_name e))
    @@ field "code" (Value.Int (Vida_error.exit_code e))
    @@ field "message" (Value.String (Vida_error.to_string e)) tail
  in
  match e with
  | Vida_error.Overloaded { retry_after_ms; _ } ->
    (* the protocol's Retry-After: clients back off this long before
       resubmitting a shed query *)
    respond (base @@ field "retry_after_ms" (Value.Float retry_after_ms) [])
  | _ -> respond (base [])

let error_payload req_id (e : Vida.error) =
  match e with
  | Vida.Data_error de -> data_error_payload req_id de
  | Vida.Parse_error _ | Vida.Type_error _ | Vida.Engine_error _ ->
    let kind, code =
      match e with
      | Vida.Parse_error _ -> ("parse", 65)
      | Vida.Type_error _ -> ("type", 74)
      | _ -> ("engine", 70)
    in
    respond
      (field "id" req_id
      @@ field "status" (Value.String "error")
      @@ field "kind" (Value.String kind)
      @@ field "code" (Value.Int code)
      @@ field "message" (Value.String (Vida.error_to_string e)) [])

let bad_request_payload msg =
  respond
    (field "id" Value.Null
    @@ field "status" (Value.String "error")
    @@ field "kind" (Value.String "invalid")
    @@ field "code" (Value.Int 70)
    @@ field "message" (Value.String msg) [])

(* --- request parsing --- *)

let parse_request payload =
  match Vida_raw.Json.parse ~source:"request" payload with
  | exception Vida_error.Error e -> Error (Vida_error.to_string e)
  | Value.Record _ as v -> (
    match Value.field_opt v "query" with
    | Some (Value.String query) ->
      let syntax =
        match Value.field_opt v "syntax" with
        | Some (Value.String "sql") -> Ok `Sql
        | Some (Value.String "comp") | None -> Ok `Comp
        | Some other ->
          Error
            (Printf.sprintf "unknown syntax %s (want \"comp\" or \"sql\")"
               (Value.to_json other))
      in
      Result.map
        (fun syntax ->
          { req_id = Option.value (Value.field_opt v "id") ~default:Value.Null;
            query; syntax;
            tenant =
              (match Value.field_opt v "tenant" with
              | Some (Value.String s) -> Some s
              | _ -> None) })
        syntax
    | Some _ -> Error "request field \"query\" must be a string"
    | None -> Error "request lacks a \"query\" field")
  | _ -> Error "request frame must be a JSON object"

(* --- the query path (runs on an executor domain, post-admission) --- *)

let execute srv session req =
  (* degradation ladder: under elevated pressure every query runs
     sequentially — no shared-pool fan-out — so the worker domains serve
     admitted queries instead of amplifying the backlog *)
  let domains =
    match G.Admission.pressure srv.adm with
    | `Normal -> None
    | `Elevated -> Some 1
  in
  let outcome = Vida.submit ?domains ~syntax:req.syntax session req.query in
  Mutex.protect srv.lock (fun () -> srv.served <- srv.served + 1);
  match outcome with
  | Ok r -> ok_payload req.req_id r
  | Error e -> error_payload req.req_id e

(* --- executor domains --- *)

let exec_loop srv () =
  let rec next () =
    Mutex.lock srv.lock;
    (* drain-before-exit: a job enqueued before [stopping] flipped must
       still get a reply, or its connection thread would await forever *)
    let rec claim () =
      match Queue.take_opt srv.queue with
      | Some job ->
        Mutex.unlock srv.lock;
        Some job
      | None ->
        if srv.stopping then (
          Mutex.unlock srv.lock;
          None)
        else (
          Condition.wait srv.work srv.lock;
          claim ())
    in
    match claim () with
    | None -> ()
    | Some job ->
      let reply =
        try job.run ()
        with e ->
          (* a worker exception must never take the executor domain down:
             the session that submitted the query gets a typed report and
             every other session is untouched *)
          bad_request_payload ("internal error: " ^ Printexc.to_string e)
      in
      Mutex.protect job.j_lock (fun () ->
          job.reply <- Some reply;
          Condition.broadcast job.j_done);
      next ()
  in
  next ()

let submit_job srv run =
  let job =
    { run; reply = None; j_lock = Mutex.create (); j_done = Condition.create () }
  in
  Mutex.protect srv.lock (fun () ->
      if srv.stopping then
        (* refused, answered inline: after [stopping] no executor is
           guaranteed to ever claim the queue again *)
        job.reply <- Some (bad_request_payload "server shutting down")
      else (
        Queue.add job srv.queue;
        Condition.signal srv.work));
  job

(* The peer closed its end iff the socket selects readable and a MSG_PEEK
   recv returns 0 bytes. Data arriving mid-query (an eager pipelined
   request) selects readable too and simply stays buffered. *)
let peer_gone fd =
  match Unix.select [ fd ] [] [] 0. with
  | [], _, _ -> false
  | _ -> (
    let b = Bytes.create 1 in
    match Unix.recv fd b 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error _ -> true)
  | exception Unix.Unix_error _ -> true

(* --- connection handling (systhreads: socket IO and cancellation only) --- *)

let handle_conn srv fd =
  let session =
    Vida.open_session srv.db
      ~name:(Printf.sprintf "conn-%d" (Thread.id (Thread.self ())))
  in
  let rec serve () =
    match Frame.read ~max_bytes:srv.config.max_frame_bytes fd with
    | None -> ()
    | Some payload ->
      let reply =
        match parse_request payload with
        | Error msg -> Some (bad_request_payload msg)
        | Ok req -> (
          (* admission happens HERE, on the connection thread: the
             bounded front door must see the whole offered load, so shed
             decisions cannot hide behind a busy executor. With
             [executors >= max_concurrent], an admitted query never waits
             for an executor either. *)
          let tenant =
            Option.value req.tenant ~default:(Vida.session_tenant session)
          in
          let limits = Vida.limits srv.db in
          match
            G.Admission.admit ?deadline_ms:limits.G.deadline_ms srv.adm
              ~tenant
              ~reserve:(Option.value limits.G.memory_budget ~default:0)
          with
          | exception Vida_error.Error (Vida_error.Overloaded _ as e) ->
            Mutex.protect srv.lock (fun () -> srv.shed <- srv.shed + 1);
            Some (data_error_payload req.req_id e)
          | ticket ->
          let job =
            submit_job srv (fun () ->
                (* the slot is returned on every completion path — a
                   failing query, a cancelled one, a dead client *)
                Fun.protect
                  ~finally:(fun () -> G.Admission.release srv.adm ticket)
                  (fun () -> execute srv session req))
          in
          (* wait for the executor; watch the socket meanwhile so a
             client that dies mid-query cancels its work instead of
             occupying an admission slot until completion *)
          let cancelled = ref false in
          let rec await () =
            match Mutex.protect job.j_lock (fun () -> job.reply) with
            | Some r -> if !cancelled then None else Some r
            | None ->
              if (not !cancelled) && peer_gone fd then (
                cancelled := true;
                Vida.cancel session ~reason:"client disconnected";
                Mutex.protect srv.lock (fun () ->
                    srv.disconnect_cancels <- srv.disconnect_cancels + 1));
              Thread.delay 0.002;
              await ()
          in
          await ())
      in
      (match reply with
      | Some r ->
        Frame.write fd r;
        serve ()
      | None -> (* client gone; its query was cancelled *) ())
  in
  (try serve () with
  | Vida_error.Error _ -> () (* framing violation: drop the connection *)
  | Unix.Unix_error _ -> ());
  Vida.close_session session;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* Each connection thread registers itself (so [stop] can force it to
   EOF and join it) and prunes itself on exit (so [active_connections] is
   a live gauge, not a high-water mark). Registration is refused once
   [stopping] is set: [stop] snapshots the registry after joining the
   acceptor, and a late connection that raced the shutdown must not slip
   past that snapshot unjoinable. *)
let conn_main srv fd () =
  let me = { c_fd = fd; c_thread = Thread.self () } in
  let registered =
    Mutex.protect srv.lock (fun () ->
        if srv.stopping then false
        else (
          srv.conns <- me :: srv.conns;
          true))
  in
  if not registered then (try Unix.close fd with Unix.Unix_error _ -> ())
  else (
    handle_conn srv fd;
    Mutex.protect srv.lock (fun () ->
        srv.conns <- List.filter (fun c -> c != me) srv.conns))

let accept_loop srv () =
  let rec loop () =
    match Unix.accept srv.listen_fd with
    | fd, _ ->
      ignore (Thread.create (conn_main srv fd) ());
      loop ()
    | exception Unix.Unix_error _ -> () (* listener closed: shutting down *)
  in
  loop ()

(* --- lifecycle --- *)

let bind_address address =
  match address with
  | Tcp { host; port } ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd

let create ?(config = default_config) db =
  let pool = Morsel.Pool.create ?domains:config.pool_domains () in
  Morsel.set_shared_pool (Some pool);
  let adm = G.Admission.create ~config:config.admission () in
  let listen_fd = bind_address config.address in
  Unix.listen listen_fd 64;
  let srv =
    { db; config; adm; pool; listen_fd; bound = Unix.getsockname listen_fd;
      queue = Queue.create (); lock = Mutex.create ();
      work = Condition.create (); stopping = false; execs = []; acceptor = None;
      conns = []; served = 0; shed = 0; disconnect_cancels = 0 }
  in
  let executors =
    match config.executors with
    | Some n -> max 1 n
    | None -> max 1 config.admission.G.Admission.max_concurrent
  in
  srv.execs <- List.init executors (fun _ -> Domain.spawn (exec_loop srv));
  srv.acceptor <- Some (Thread.create (accept_loop srv) ());
  srv

let address srv =
  match srv.bound with
  | Unix.ADDR_INET (host, port) ->
    Tcp { host = Unix.string_of_inet_addr host; port }
  | Unix.ADDR_UNIX path -> Unix_socket path

let stats srv =
  let active_connections, served, shed, disconnect_cancels =
    Mutex.protect srv.lock (fun () ->
        (List.length srv.conns, srv.served, srv.shed, srv.disconnect_cancels))
  in
  { admission = G.Admission.gauges srv.adm; pool = Morsel.Pool.stats srv.pool;
    active_connections; served; shed; disconnect_cancels }

let stop srv =
  Mutex.protect srv.lock (fun () ->
      srv.stopping <- true;
      Condition.broadcast srv.work);
  (* wake the acceptor, then force every live connection to EOF so its
     thread unblocks from Frame.read and exits. [shutdown] before [close]:
     closing an fd does NOT interrupt a thread already blocked in
     [accept]/[read] on Linux — shutting the socket down does *)
  (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (match srv.acceptor with Some t -> Thread.join t | None -> ());
  let conns = Mutex.protect srv.lock (fun () -> srv.conns) in
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun c -> Thread.join c.c_thread) conns;
  Mutex.protect srv.lock (fun () ->
      srv.conns <- [];
      Condition.broadcast srv.work);
  List.iter Domain.join srv.execs;
  srv.execs <- [];
  (match Morsel.shared_pool () with
  | Some p when p == srv.pool -> Morsel.set_shared_pool None
  | _ -> ());
  Morsel.Pool.shutdown srv.pool;
  match srv.config.address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* --- client --- *)

module Client = struct
  type client = { fd : Unix.file_descr; mutable next_id : int }

  let connect address =
    match address with
    | Tcp { host; port } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      { fd; next_id = 1 }
    | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      { fd; next_id = 1 }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let roundtrip c payload =
    Frame.write c.fd payload;
    match Frame.read c.fd with
    | Some reply -> reply
    | None ->
      Vida_error.io_failure ~source:"client" "server closed the connection"

  let query ?tenant ?(syntax = `Comp) c text =
    let id = c.next_id in
    c.next_id <- id + 1;
    let fields =
      field "id" (Value.Int id)
      @@ field "query" (Value.String text)
      @@ field "syntax"
           (Value.String (match syntax with `Comp -> "comp" | `Sql -> "sql"))
           (match tenant with
           | Some t -> field "tenant" (Value.String t) []
           | None -> [])
    in
    Vida_raw.Json.parse ~source:"response"
      (roundtrip c (respond fields))
end
