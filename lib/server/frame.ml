(* Length-prefixed framing over a stream socket: a 4-byte big-endian
   payload length, then that many bytes of UTF-8 JSON. The length guard
   turns a corrupt or hostile header into a typed error instead of an
   attempted multi-gigabyte allocation.

   All blocking IO here is deadline-capable and EINTR-hardened: reads and
   writes wait for fd readiness with [Unix.select] (retried on EINTR)
   under an optional budget, so a stalled peer surfaces as a typed
   {!Timeout} instead of pinning the calling thread forever. Two read
   budgets exist because they mean different things: [idle_timeout_ms]
   bounds the wait for the FIRST byte of a frame (a quiet-but-healthy
   connection — reaping it is a policy decision), while [frame_timeout_ms]
   bounds the rest of the frame once its first byte arrived (a peer that
   started a frame and stalled is slowloris, and is always dropped). *)

let default_max_bytes = 64 * 1024 * 1024

(* Why the peer's slowness tripped a deadline: waiting for a new frame
   ([`Idle]), mid-frame ([`Stalled_frame], slowloris), or draining our
   write ([`Write], a slow reader). *)
exception Timeout of [ `Idle | `Stalled_frame | `Write ]

let now_ms () = Unix.gettimeofday () *. 1000.

(* Wait until [fd] is ready (read or write) or [deadline] (absolute ms,
   [None] = forever) passes. EINTR during the wait restarts it with the
   remaining budget. *)
let wait_ready ~for_write fd deadline timeout_kind =
  let rec wait () =
    let budget_s =
      match deadline with
      | None -> -1. (* block indefinitely *)
      | Some d ->
        let remaining = (d -. now_ms ()) /. 1000. in
        if remaining <= 0. then raise (Timeout timeout_kind) else remaining
    in
    let r, w =
      if for_write then ([], [ fd ]) else ([ fd ], [])
    in
    match Unix.select r w [] budget_s with
    | [], [], _ -> raise (Timeout timeout_kind)
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let deadline_of = function
  | None -> None
  | Some ms -> Some (now_ms () +. ms)

(* A broken pipe or a peer reset mid-write is a disconnect, not a crash:
   surface it as the typed [Io_failure] connection handlers already treat
   as "peer gone". (The process must have SIGPIPE ignored — the server
   and client set that up — or the signal kills us before EPIPE is even
   returned.) *)
let rec really_write ?timeout_ms fd buf pos len =
  let deadline = deadline_of timeout_ms in
  let rec go pos len =
    if len > 0 then (
      (match deadline with
      | None -> ()
      | Some _ -> wait_ready ~for_write:true fd deadline `Write);
      let n =
        match Unix.write fd buf pos len with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Vida_error.io_failure ~source:"frame" "peer closed the connection"
      in
      go (pos + n) (len - n))
  in
  go pos len

and write ?timeout_ms fd payload =
  let len = String.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  really_write ?timeout_ms fd buf 0 (4 + len)

(* [really_read] returns how many bytes it could read before EOF. When
   [deadline] passes mid-read, raises [Timeout kind]. *)
let really_read ?deadline ~kind fd buf pos len =
  let rec go pos remaining =
    if remaining = 0 then len
    else (
      (match deadline with
      | None -> ()
      | Some _ -> wait_ready ~for_write:false fd deadline kind);
      match Unix.read fd buf pos remaining with
      | 0 -> len - remaining
      | n -> go (pos + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos remaining
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> len - remaining)
  in
  go pos len

let read ?(max_bytes = default_max_bytes) ?idle_timeout_ms ?frame_timeout_ms fd
    =
  let header = Bytes.create 4 in
  (* the first byte may take as long as the idle policy allows... *)
  (match idle_timeout_ms with
  | None -> ()
  | Some _ ->
    wait_ready ~for_write:false fd (deadline_of idle_timeout_ms) `Idle);
  (* ...but once a frame has started, the whole frame must arrive within
     the frame budget: a trickling header is the cheapest slowloris *)
  let deadline = deadline_of frame_timeout_ms in
  match really_read ?deadline ~kind:`Stalled_frame fd header 0 4 with
  | 0 -> None (* clean EOF between frames: the peer hung up *)
  | n when n < 4 ->
    Vida_error.truncated ~source:"frame" ~offset:n "4-byte frame header"
  | _ ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_bytes then
      Vida_error.resource_limit ~source:"frame" ~what:"frame bytes" ~actual:len
        ~limit:max_bytes;
    let payload = Bytes.create len in
    let got = really_read ?deadline ~kind:`Stalled_frame fd payload 0 len in
    if got < len then
      Vida_error.truncated ~source:"frame" ~offset:(4 + got)
        "frame payload (%d of %d bytes)" got len
    else Some (Bytes.unsafe_to_string payload)
