(* Length-prefixed framing over a stream socket: a 4-byte big-endian
   payload length, then that many bytes of UTF-8 JSON. The length guard
   turns a corrupt or hostile header into a typed error instead of an
   attempted multi-gigabyte allocation. *)

let default_max_bytes = 64 * 1024 * 1024

let rec really_write fd buf pos len =
  if len > 0 then (
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd buf (pos + n) (len - n))

(* [really_read] returns how many bytes it could read before EOF. *)
let really_read fd buf pos len =
  let rec go pos remaining =
    if remaining = 0 then len
    else
      match Unix.read fd buf pos remaining with
      | 0 -> len - remaining
      | n -> go (pos + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos remaining
  in
  go pos len

let write fd payload =
  let len = String.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len)

let read ?(max_bytes = default_max_bytes) fd =
  let header = Bytes.create 4 in
  match really_read fd header 0 4 with
  | 0 -> None (* clean EOF between frames: the peer hung up *)
  | n when n < 4 ->
    Vida_error.truncated ~source:"frame" ~offset:n "4-byte frame header"
  | _ ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_bytes then
      Vida_error.resource_limit ~source:"frame" ~what:"frame bytes" ~actual:len
        ~limit:max_bytes;
    let payload = Bytes.create len in
    let got = really_read fd payload 0 len in
    if got < len then
      Vida_error.truncated ~source:"frame" ~offset:(4 + got)
        "frame payload (%d of %d bytes)" got len
    else Some (Bytes.unsafe_to_string payload)
