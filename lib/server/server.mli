(** Concurrent query serving: the multi-session front end.

    One {!Vida.t} instance serves many clients over TCP or a Unix-domain
    socket. Each message is a length-prefixed JSON frame ({!Frame}):

    - request: [{"id": any, "query": "...", "syntax": "comp"|"sql",
      "tenant": "...", "deadline_ms": float, "q_crc": int}] — [id] is
      echoed verbatim; [syntax] defaults to comprehension; [tenant]
      defaults per connection and scopes the admission controller's
      per-tenant cap; [deadline_ms] is the client's remaining budget and
      caps (never widens) the queue wait and the query deadline; [q_crc]
      is an optional FNV-1a integrity tag over the query text — a
      mismatch (bits flipped in transit that still parse as JSON) is
      refused with [kind = "corrupt"], which a self-healing client treats
      as a transport failure and resubmits;
    - control: [{"id", "op": "ping"}] → [{"id", "status": "pong"}]
      (heartbeat; counts as activity against the idle reaper), and
      [{"id", "op": "health"}] → a ["health"] record of admission gauges,
      lifetime counters, per-source circuit-breaker states and a
      ["state"] sub-record for the durable state directory (enabled flag,
      [degraded] = persistence suspended after an OS failure while
      queries keep answering, persist/warm-reuse counters);
    - success: [{"id", "status": "ok", "cache": "hit"|"miss",
      "result_cache": "hit"|"miss", "compile_ms", "exec_ms", "v_crc",
      "value"}] — [cache] marks whether the optimized plan was served by
      the plan cache; [v_crc] is the FNV-1a tag over the value's JSON, so
      a client can detect a corrupted-but-parseable answer end-to-end;
    - failure: [{"id", "status": "error", "kind", "code", "message"}] with
      [kind]/[code] from {!Vida_error.kind_name}/{!Vida_error.exit_code};
      a shed query ([kind = "overloaded"], code 77, or
      [kind = "unavailable"], code 78, when a source's circuit breaker is
      open) additionally carries ["retry_after_ms"], the protocol's
      Retry-After hint.

    Architecture: connection {e threads} only do socket IO — the governor
    session and epoch are ambient per {e domain}, so queries execute on a
    pool of dedicated executor domains, and their morsel regions fan out
    over one shared long-lived worker pool ({!Vida_raw.Morsel.Pool})
    scheduling all concurrent queries fair-share. The front door is
    {!Vida_governor.Governor.Admission}: a query is admitted, queued
    (bounded, deadline-aware) or shed; under elevated pressure admitted
    queries run sequentially instead of fanning out (degradation ladder).
    A client that disconnects mid-query has its query cancelled
    cooperatively — budget charges, epoch pins and its admission slot are
    all released; a killed client can never leak a pool slot.

    Resilience: per-connection IO is deadline-bounded — an idle session is
    reaped after [idle_timeout_ms], a frame that starts and stalls
    (slowloris) is dropped after [frame_timeout_ms], and a reader too slow
    to drain its reply is dropped after [write_timeout_ms]; each drop is a
    counter in {!stats} and the health report. SIGPIPE is ignored (peer
    resets surface as typed disconnects) and all blocking socket calls
    retry on [EINTR]. {!stop} drains gracefully: accepting stops first,
    running queries get up to the drain deadline to finish, then whatever
    remains is cancelled cooperatively. *)

type address = Tcp of { host : string; port : int } | Unix_socket of string

type config = {
  address : address;  (** where to listen; TCP port 0 picks a free port *)
  admission : Vida_governor.Governor.Admission.config;
  pool_domains : int option;
      (** shared morsel-pool sizing; [None] resolves via
          {!Vida_raw.Morsel.resolve} (both snapshotted at startup) *)
  executors : int option;
      (** executor domains running queries; [None] = [admission.max_concurrent] *)
  max_frame_bytes : int;  (** per-frame payload cap *)
  idle_timeout_ms : float option;
      (** reap a connection with no frame for this long; [None] = never *)
  frame_timeout_ms : float option;
      (** a frame that started must complete within this budget
          (slowloris protection); [None] = unbounded *)
  write_timeout_ms : float option;
      (** a reply must drain to the peer within this budget; [None] =
          unbounded *)
  drain_ms : float;
      (** {!stop}'s grace period for in-flight queries (0 = immediate) *)
}

val default_config : config
(** loopback TCP on a free port, {!Vida_governor.Governor.Admission.default_config},
    resolved pool sizing, 64 MiB frames, no idle reaping, 10 s frame and
    write budgets, no drain grace. *)

type t

val create : ?config:config -> Vida.t -> t
(** [create db] binds, installs the shared morsel pool, spawns the
    executor domains and the acceptor thread, and starts serving. Ignores
    SIGPIPE process-wide. For a Unix-socket address, a stale socket file
    left by a crashed server is probed and unlinked ([ECONNREFUSED] on
    connect = nobody accepting); a file with a {e live} server behind it
    raises [Unix.Unix_error (EADDRINUSE, _, _)] instead of stealing it. *)

val address : t -> address
(** the bound address — for TCP with port 0, the actual port. *)

val stop : ?drain_ms:float -> t -> unit
(** graceful shutdown: stops accepting, then lets in-flight queries finish
    for up to [drain_ms] (default [config.drain_ms]), then forces live
    connections to EOF (cancelling still-running queries cooperatively),
    joins every thread and executor domain, uninstalls and shuts down the
    shared pool. *)

type stats = {
  admission : Vida_governor.Governor.Admission.gauges;
  pool : Vida_raw.Morsel.Pool.stats;
  active_connections : int;
  served : int;  (** admitted queries answered (ok or error) *)
  shed : int;  (** queries refused with [Overloaded] *)
  disconnect_cancels : int;  (** queries cancelled by client disconnect *)
  idle_reaped : int;  (** connections dropped by the idle reaper *)
  slow_frame_drops : int;  (** connections dropped mid-frame (slowloris) *)
  write_timeouts : int;  (** connections dropped for not draining replies *)
  pings : int;  (** heartbeat frames answered *)
  breakers : Vida_governor.Governor.Breaker.snapshot list;
      (** per-source circuit-breaker states, sorted by source *)
}

val stats : t -> stats
(** instantaneous gauges + lifetime counters: the soak asserts admission
    occupancy and pool regions return to zero when traffic stops. *)

(** A minimal blocking client for the framed protocol (tests, the CLI's
    client mode, the bench harness), plus a {e self-healing} wrapper that
    retries, reconnects and backs off. Not thread-safe; one request in
    flight per client. *)
module Client : sig
  type client

  val connect : address -> client
  (** also ignores SIGPIPE process-wide, so a server reset mid-write
      surfaces as a typed error instead of killing the process. *)

  val close : client -> unit

  val roundtrip : client -> string -> string
  (** [roundtrip c payload] sends one raw frame and blocks for the reply
      frame. Raises [Vida_error.Io_failure] if the server closes first. *)

  val query :
    ?tenant:string -> ?syntax:[ `Comp | `Sql ] -> client -> string ->
    Vida_data.Value.t
  (** [query c text] sends a request frame (ids auto-increment) and
      parses the JSON reply into a value — inspect ["status"], ["value"],
      ["cache"], ["kind"], ["retry_after_ms"] as record fields. *)

  val ping : client -> bool
  (** heartbeat roundtrip; [true] iff the server answered ["pong"]. *)

  val health : client -> Vida_data.Value.t
  (** the server's health report (gauges, counters, breaker states). *)

  (** {2 Self-healing client} *)

  type retry_config = {
    max_attempts : int;  (** total tries per logical query *)
    base_backoff_ms : float;  (** first backoff; doubled per retry *)
    max_backoff_ms : float;  (** cap on one backoff sleep *)
    deadline_ms : float option;
        (** total budget across ALL attempts of one query; the remaining
            budget also rides each request as its [deadline_ms] field *)
    seed : int;  (** jitter determinism (tests, bench) *)
  }

  val default_retry : retry_config
  (** 5 attempts, 50 ms base doubling to a 2 s cap, no deadline. *)

  type resilient

  val connect_resilient : ?retry:retry_config -> address -> resilient
  (** lazy: the first {!rquery} dials. *)

  val close_resilient : resilient -> unit

  val rquery :
    ?tenant:string -> ?syntax:[ `Comp | `Sql ] -> resilient -> string ->
    Vida_data.Value.t
  (** [rquery rc text] submits with retries. Transport failures (refused,
      reset, torn frame) reconnect and resubmit under one stable request
      id — queries are read-only, so resubmission is idempotent; typed
      [overloaded]/[unavailable] refusals back off by
      [max(retry_after_ms, exponential)] with seeded full jitter. Returns
      the last reply (possibly a typed error record) once attempts or the
      budget run out; raises [Vida_error.Io_failure] if no attempt got a
      reply at all. *)

  val reconnects : resilient -> int
  (** lifetime count of reconnect-and-resubmit cycles. *)

  val backoffs : resilient -> int
  (** lifetime count of backoff sleeps taken on typed refusals. *)
end
