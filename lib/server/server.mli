(** Concurrent query serving: the multi-session front end.

    One {!Vida.t} instance serves many clients over TCP or a Unix-domain
    socket. Each message is a length-prefixed JSON frame ({!Frame}):

    - request: [{"id": any, "query": "...", "syntax": "comp"|"sql",
      "tenant": "..."}] — [id] is echoed verbatim; [syntax] defaults to
      comprehension; [tenant] defaults per connection and scopes the
      admission controller's per-tenant cap;
    - success: [{"id", "status": "ok", "cache": "hit"|"miss",
      "result_cache": "hit"|"miss", "compile_ms", "exec_ms", "value"}] —
      [cache] marks whether the optimized plan was served by the plan
      cache;
    - failure: [{"id", "status": "error", "kind", "code", "message"}] with
      [kind]/[code] from {!Vida_error.kind_name}/{!Vida_error.exit_code};
      a shed query ([kind = "overloaded"], code 77) additionally carries
      ["retry_after_ms"], the protocol's Retry-After hint.

    Architecture: connection {e threads} only do socket IO — the governor
    session and epoch are ambient per {e domain}, so queries execute on a
    pool of dedicated executor domains, and their morsel regions fan out
    over one shared long-lived worker pool ({!Vida_raw.Morsel.Pool})
    scheduling all concurrent queries fair-share. The front door is
    {!Vida_governor.Governor.Admission}: a query is admitted, queued
    (bounded, deadline-aware) or shed; under elevated pressure admitted
    queries run sequentially instead of fanning out (degradation ladder).
    A client that disconnects mid-query has its query cancelled
    cooperatively — budget charges, epoch pins and its admission slot are
    all released; a killed client can never leak a pool slot. *)

type address = Tcp of { host : string; port : int } | Unix_socket of string

type config = {
  address : address;  (** where to listen; TCP port 0 picks a free port *)
  admission : Vida_governor.Governor.Admission.config;
  pool_domains : int option;
      (** shared morsel-pool sizing; [None] resolves via
          {!Vida_raw.Morsel.resolve} (both snapshotted at startup) *)
  executors : int option;
      (** executor domains running queries; [None] = [admission.max_concurrent] *)
  max_frame_bytes : int;  (** per-frame payload cap *)
}

val default_config : config
(** loopback TCP on a free port, {!Vida_governor.Governor.Admission.default_config},
    resolved pool sizing, 64 MiB frames. *)

type t

val create : ?config:config -> Vida.t -> t
(** [create db] binds, installs the shared morsel pool, spawns the
    executor domains and the acceptor thread, and starts serving. *)

val address : t -> address
(** the bound address — for TCP with port 0, the actual port. *)

val stop : t -> unit
(** graceful shutdown: stops accepting, forces live connections to EOF
    (cancelling their in-flight queries), joins every thread and executor
    domain, uninstalls and shuts down the shared pool. *)

type stats = {
  admission : Vida_governor.Governor.Admission.gauges;
  pool : Vida_raw.Morsel.Pool.stats;
  active_connections : int;
  served : int;  (** admitted queries answered (ok or error) *)
  shed : int;  (** queries refused with [Overloaded] *)
  disconnect_cancels : int;  (** queries cancelled by client disconnect *)
}

val stats : t -> stats
(** instantaneous gauges + lifetime counters: the soak asserts admission
    occupancy and pool regions return to zero when traffic stops. *)

(** A minimal blocking client for the framed protocol (tests, the CLI's
    client mode, the bench harness). Not thread-safe; one request in
    flight per client. *)
module Client : sig
  type client

  val connect : address -> client
  val close : client -> unit

  val roundtrip : client -> string -> string
  (** [roundtrip c payload] sends one raw frame and blocks for the reply
      frame. Raises [Vida_error.Io_failure] if the server closes first. *)

  val query :
    ?tenant:string -> ?syntax:[ `Comp | `Sql ] -> client -> string ->
    Vida_data.Value.t
  (** [query c text] sends a request frame (ids auto-increment) and
      parses the JSON reply into a value — inspect ["status"], ["value"],
      ["cache"], ["kind"], ["retry_after_ms"] as record fields. *)
end
