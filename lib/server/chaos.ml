(* A network fault injector: a TCP/Unix-socket proxy that sits between a
   client and a server and misbehaves on a seeded schedule. Each pumped
   chunk draws from a splitmix64 stream owned by the proxy and may be
   corrupted (bit flips — torn/garbled frames downstream), stalled
   (held for [stall_ms] — exercises idle/frame deadlines), torn (a prefix
   forwarded, then both sides reset — a mid-frame kill), reset (both
   sides dropped immediately) or delayed (fixed per-chunk latency).

   The proxy exists so resilience tests and the bench can subject the
   REAL serving stack to network pathologies without mocking sockets:
   the server behind it must keep answering healthy connections, and the
   self-healing client in front of it must reconnect and resubmit.

   Probabilities are per-chunk and independent; the [seed] makes a run's
   fault schedule reproducible modulo thread interleaving (tests assert
   behavior classes — typed errors, drained gauges — not exact fault
   positions). *)

type config = {
  corrupt_p : float;  (* flip a few bits in the chunk *)
  stall_p : float;  (* hold the chunk for stall_ms before forwarding *)
  stall_ms : float;
  reset_p : float;  (* drop both sides of the connection *)
  tear_p : float;  (* forward a prefix of the chunk, then reset *)
  delay_ms : float;  (* fixed added latency per chunk *)
}

let calm =
  { corrupt_p = 0.; stall_p = 0.; stall_ms = 0.; reset_p = 0.; tear_p = 0.;
    delay_ms = 0. }

type stats = {
  connections : int;
  chunks : int;
  corruptions : int;
  stalls : int;
  resets : int;
  tears : int;
}

type t = {
  upstream : Server.address;
  cfg : config;
  listen_fd : Unix.file_descr;
  port : int;
  lock : Vida_sync.Lock.t;
  mutable rng : int64;
  mutable acceptor : Thread.t option;
  mutable pumps : Thread.t list;
  mutable s_connections : int;
  mutable s_chunks : int;
  mutable s_corruptions : int;
  mutable s_stalls : int;
  mutable s_resets : int;
  mutable s_tears : int;
}

(* splitmix64 — same generator the fault injector uses; every draw is
   serialized under the proxy lock *)
let next_u64 t =
  Vida_sync.Lock.protect t.lock (fun () ->
      let open Int64 in
      t.rng <- add t.rng 0x9E3779B97F4A7C15L;
      let z = t.rng in
      let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
      logxor z (shift_right_logical z 31))

let next_float t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11)
  /. 9007199254740992.

let next_int t bound =
  if bound <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1)
                       (Int64.of_int bound))

let bump t f = Vida_sync.Lock.protect t.lock f

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* What to do with one chunk, drawn from the seeded stream. Decisions are
   checked in severity order; at most one fault per chunk. *)
let decide t =
  let p = next_float t in
  if p < t.cfg.reset_p then `Reset
  else if p < t.cfg.reset_p +. t.cfg.tear_p then `Tear
  else if p < t.cfg.reset_p +. t.cfg.tear_p +. t.cfg.corrupt_p then `Corrupt
  else if
    p < t.cfg.reset_p +. t.cfg.tear_p +. t.cfg.corrupt_p +. t.cfg.stall_p
  then `Stall
  else `Forward

let flip_bits t buf len =
  let flips = 1 + next_int t 3 in
  for _ = 1 to flips do
    let i = next_int t len in
    let bit = next_int t 8 in
    Bytes.set buf i
      (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl bit)))
  done

let write_all fd buf len =
  let rec go pos =
    if pos < len then
      match Unix.write fd buf pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

(* Pump one direction until EOF, error, or an injected reset. Killing one
   direction shuts BOTH fds down so the peer threads unblock too. *)
let pump t src dst () =
  let buf = Bytes.create 4096 in
  let kill () = shutdown_quiet src; shutdown_quiet dst in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> kill ()
    | 0 -> kill ()
    | n -> (
      bump t (fun () -> t.s_chunks <- t.s_chunks + 1);
      if t.cfg.delay_ms > 0. then Thread.delay (t.cfg.delay_ms /. 1000.);
      match decide t with
      | `Reset ->
        bump t (fun () -> t.s_resets <- t.s_resets + 1);
        kill ()
      | `Tear -> (
        bump t (fun () -> t.s_tears <- t.s_tears + 1);
        let keep = next_int t n in
        (try if keep > 0 then write_all dst buf keep
         with Unix.Unix_error _ -> ());
        kill ())
      | `Corrupt | `Stall | `Forward as d -> (
        (match d with
        | `Corrupt ->
          bump t (fun () -> t.s_corruptions <- t.s_corruptions + 1);
          flip_bits t buf n
        | `Stall ->
          bump t (fun () -> t.s_stalls <- t.s_stalls + 1);
          Thread.delay (t.cfg.stall_ms /. 1000.)
        | `Forward -> ());
        match write_all dst buf n with
        | () -> loop ()
        | exception Unix.Unix_error _ -> kill ()))
  in
  loop ()

let connect_upstream address =
  match address with
  | Server.Tcp { host; port } ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with e -> close_quiet fd; raise e);
    fd
  | Server.Unix_socket path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> close_quiet fd; raise e);
    fd

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
    | client_fd, _ ->
      (match connect_upstream t.upstream with
      | exception _ -> close_quiet client_fd
      | up_fd ->
        bump t (fun () -> t.s_connections <- t.s_connections + 1);
        (* pumps only [shutdown] on faults; the fds are closed exactly
           once, after BOTH directions exited, so no pump can race a
           close against a still-reading sibling *)
        let p2 = Thread.create (pump t up_fd client_fd) () in
        let p1 =
          Thread.create
            (fun () ->
              pump t client_fd up_fd ();
              Thread.join p2;
              close_quiet client_fd;
              close_quiet up_fd)
            ()
        in
        bump t (fun () -> t.pumps <- p1 :: t.pumps));
      loop ()
  in
  loop ()

let start ?(seed = 0) ?(config = calm) upstream =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", 0));
  Unix.listen listen_fd 64;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    { upstream; cfg = config; listen_fd; port; lock = Vida_sync.Lock.create ~rank:35 ~name:"server.chaos" ();
      rng = Int64.of_int ((seed lxor 0xC4A05) lor 1);
      acceptor = None; pumps = []; s_connections = 0; s_chunks = 0;
      s_corruptions = 0; s_stalls = 0; s_resets = 0; s_tears = 0 }
  in
  t.acceptor <- Some (Thread.create (accept_loop t) ());
  t

let address t = Server.Tcp { host = "127.0.0.1"; port = t.port }

let stats t =
  Vida_sync.Lock.protect t.lock (fun () ->
      { connections = t.s_connections; chunks = t.s_chunks;
        corruptions = t.s_corruptions; stalls = t.s_stalls;
        resets = t.s_resets; tears = t.s_tears })

let stop t =
  shutdown_quiet t.listen_fd;
  close_quiet t.listen_fd;
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  (* unblock every pump still bridging a live connection *)
  let pumps = Vida_sync.Lock.protect t.lock (fun () -> t.pumps) in
  List.iter (fun th -> try Thread.join th with _ -> ()) pumps;
  Vida_sync.Lock.protect t.lock (fun () -> t.pumps <- [])
