(** Network fault injection: a misbehaving proxy for resilience testing.

    [start upstream] listens on a fresh loopback TCP port and bridges
    every accepted connection to [upstream] (the real {!Server}), pumping
    bytes in both directions. Each pumped chunk draws from a seeded
    splitmix64 stream and may be corrupted (bit flips), stalled, torn
    (a prefix forwarded, then reset), reset outright, or merely delayed —
    so the {e real} serving stack faces torn frames, half-dead peers and
    mid-write resets without any socket mocking.

    The [seed] makes the fault schedule reproducible modulo thread
    interleaving: tests assert behavior classes (typed errors, drained
    gauges, zero server crashes), not exact fault positions. *)

type config = {
  corrupt_p : float;  (** per-chunk probability of flipped bits *)
  stall_p : float;  (** per-chunk probability of a [stall_ms] hold *)
  stall_ms : float;
  reset_p : float;  (** per-chunk probability of dropping both sides *)
  tear_p : float;  (** per-chunk probability of forward-prefix-then-reset *)
  delay_ms : float;  (** fixed added latency per chunk *)
}

val calm : config
(** all probabilities zero: a faithful (if chunked) relay. *)

type stats = {
  connections : int;
  chunks : int;
  corruptions : int;
  stalls : int;
  resets : int;
  tears : int;
}

type t

val start : ?seed:int -> ?config:config -> Server.address -> t
(** spawns the acceptor; each connection gets two pump threads. *)

val address : t -> Server.address
(** the proxy's own loopback address — point clients here. *)

val stats : t -> stats
val stop : t -> unit
