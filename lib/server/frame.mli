(** Length-prefixed request/response framing (serving protocol, layer 0).

    Every message on a connection is one frame: a 4-byte big-endian
    payload length followed by that many bytes of JSON. Both sides read
    and write frames symmetrically; JSON semantics live in {!Server}.

    All blocking IO is EINTR-hardened and optionally deadline-bounded, so
    a stalled or half-dead peer surfaces as a typed {!Timeout} instead of
    pinning the calling thread forever. *)

val default_max_bytes : int
(** 64 MiB — the largest payload {!read} accepts by default. *)

exception Timeout of [ `Idle | `Stalled_frame | `Write ]
(** a deadline fired: [`Idle] waiting for a frame to start (quiet
    connection, reap policy), [`Stalled_frame] mid-frame (slowloris —
    always dropped), [`Write] draining a write to a slow reader. *)

val write : ?timeout_ms:float -> Unix.file_descr -> string -> unit
(** [write fd payload] sends one complete frame (handles short writes and
    [EINTR]). With [timeout_ms], the whole frame must drain within the
    budget or {!Timeout}[ `Write] is raised. A peer that closed mid-write
    ([EPIPE]/[ECONNRESET]) raises [Vida_error.Io_failure] — the process
    must ignore SIGPIPE (the server and client both arrange this). *)

val read :
  ?max_bytes:int -> ?idle_timeout_ms:float -> ?frame_timeout_ms:float ->
  Unix.file_descr -> string option
(** [read fd] blocks for one complete frame. [None] on clean EOF at a
    frame boundary (the peer closed). Raises [Vida_error.Truncated] on a
    mid-frame EOF and [Vida_error.Resource_limit] on a length prefix
    beyond [max_bytes] — a corrupt header never provokes a huge
    allocation. [idle_timeout_ms] bounds the wait for the frame's first
    byte ({!Timeout}[ `Idle]); [frame_timeout_ms] bounds the rest of the
    frame once started ({!Timeout}[ `Stalled_frame] — slowloris
    protection). *)
