(** Length-prefixed request/response framing (serving protocol, layer 0).

    Every message on a connection is one frame: a 4-byte big-endian
    payload length followed by that many bytes of JSON. Both sides read
    and write frames symmetrically; JSON semantics live in {!Server}. *)

val default_max_bytes : int
(** 64 MiB — the largest payload {!read} accepts by default. *)

val write : Unix.file_descr -> string -> unit
(** [write fd payload] sends one complete frame (handles short writes and
    [EINTR]). *)

val read : ?max_bytes:int -> Unix.file_descr -> string option
(** [read fd] blocks for one complete frame. [None] on clean EOF at a
    frame boundary (the peer closed). Raises [Vida_error.Truncated] on a
    mid-frame EOF and [Vida_error.Resource_limit] on a length prefix
    beyond [max_bytes] — a corrupt header never provokes a huge
    allocation. *)
