open Vida_data

let default_source = "vbson"

let truncated ~source pos fmt =
  Vida_error.truncated ~source ~offset:pos fmt

(* --- varint (LEB128) and zigzag --- *)

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then (
      Buffer.add_char buf (Char.chr byte);
      continue := false)
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let read_varint ~source s pos =
  let v = ref 0 and shift = ref 0 and pos = ref pos in
  let continue = ref true in
  while !continue do
    if !pos >= String.length s then truncated ~source !pos "varint";
    let byte = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  (!v, !pos)

(* A corrupted count must not drive a giant allocation or a long decode
   loop: [n] items need at least [n] bytes (every value is >= 1 byte), so
   any count exceeding the remaining bytes is corruption, reported as
   truncation at the count's position. *)
let read_count ~source s pos =
  let n, pos' = read_varint ~source s pos in
  if n < 0 || n > String.length s - pos' then
    truncated ~source pos "%d items in %d remaining bytes" n (String.length s - pos');
  (n, pos')

let add_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let read_f64 ~source s pos =
  if pos + 8 > String.length s then truncated ~source pos "float";
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  (Int64.float_of_bits !bits, pos + 8)

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let read_string ~source s pos =
  let len, pos = read_varint ~source s pos in
  if len < 0 || pos + len > String.length s then truncated ~source pos "string of %d bytes" len;
  Vida_error.Limits.check_string_bytes ~source ~offset:pos len;
  (String.sub s pos len, pos + len)

(* --- encode --- *)

let rec encode_into buf v =
  match v with
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.Bool false -> Buffer.add_char buf '\001'
  | Value.Bool true -> Buffer.add_char buf '\002'
  | Value.Int i ->
    Buffer.add_char buf '\003';
    add_varint buf (zigzag i)
  | Value.Float f ->
    Buffer.add_char buf '\004';
    add_f64 buf f
  | Value.String s ->
    Buffer.add_char buf '\005';
    add_string buf s
  | Value.Record fields ->
    Buffer.add_char buf '\006';
    add_varint buf (List.length fields);
    List.iter
      (fun (name, v) ->
        add_string buf name;
        encode_into buf v)
      fields
  | Value.List vs -> encode_coll buf '\007' vs
  | Value.Bag vs -> encode_coll buf '\008' vs
  | Value.Set vs -> encode_coll buf '\009' vs
  | Value.Array { dims; data } ->
    Buffer.add_char buf '\010';
    add_varint buf (List.length dims);
    List.iter (add_varint buf) dims;
    add_varint buf (Array.length data);
    Array.iter (encode_into buf) data

and encode_coll buf tag vs =
  Buffer.add_char buf tag;
  add_varint buf (List.length vs);
  List.iter (encode_into buf) vs

let encode v =
  let buf = Buffer.create 64 in
  encode_into buf v;
  Buffer.contents buf

(* --- decode --- *)

let rec decode_at ~source ~depth s pos =
  Vida_error.Limits.check_nesting ~source ~offset:pos depth;
  if pos >= String.length s then truncated ~source pos "value";
  let tag = Char.code s.[pos] in
  let pos = pos + 1 in
  match tag with
  | 0 -> (Value.Null, pos)
  | 1 -> (Value.Bool false, pos)
  | 2 -> (Value.Bool true, pos)
  | 3 ->
    let v, pos = read_varint ~source s pos in
    (Value.Int (unzigzag v), pos)
  | 4 ->
    let f, pos = read_f64 ~source s pos in
    (Value.Float f, pos)
  | 5 ->
    let str, pos = read_string ~source s pos in
    (Value.String str, pos)
  | 6 ->
    let n, pos = read_count ~source s pos in
    let fields = ref [] and pos = ref pos in
    for _ = 1 to n do
      let name, p = read_string ~source s !pos in
      let v, p = decode_at ~source ~depth:(depth + 1) s p in
      fields := (name, v) :: !fields;
      pos := p
    done;
    (Value.Record (List.rev !fields), !pos)
  | 7 | 8 | 9 ->
    let n, pos = read_count ~source s pos in
    let items = ref [] and pos = ref pos in
    for _ = 1 to n do
      let v, p = decode_at ~source ~depth:(depth + 1) s !pos in
      items := v :: !items;
      pos := p
    done;
    let vs = List.rev !items in
    ( (match tag with
      | 7 -> Value.List vs
      | 8 -> Value.Bag vs
      | _ -> Value.Set vs),
      !pos )
  | 10 ->
    let ndims, pos = read_count ~source s pos in
    let dims = ref [] and pos = ref pos in
    for _ = 1 to ndims do
      let d, p = read_varint ~source s !pos in
      dims := d :: !dims;
      pos := p
    done;
    let n, p = read_count ~source s !pos in
    pos := p;
    let data =
      Array.init n (fun _ ->
          let v, p = decode_at ~source ~depth:(depth + 1) s !pos in
          pos := p;
          v)
    in
    (Value.Array { dims = List.rev !dims; data }, !pos)
  | t -> Vida_error.parse_error ~source ~offset:(pos - 1) "unknown tag %d" t

let decode_prefix ?(source = default_source) s ~pos =
  decode_at ~source ~depth:0 s pos

let decode ?(source = default_source) s =
  let v, pos = decode_at ~source ~depth:0 s 0 in
  if pos <> String.length s then
    Vida_error.parse_error ~source ~offset:pos "trailing bytes after the value"
  else v

(* Skip a value without building it. *)
let rec skip_at ~source ~depth s pos =
  Vida_error.Limits.check_nesting ~source ~offset:pos depth;
  if pos >= String.length s then truncated ~source pos "value";
  let tag = Char.code s.[pos] in
  let pos = pos + 1 in
  match tag with
  | 0 | 1 | 2 -> pos
  | 3 -> snd (read_varint ~source s pos)
  | 4 ->
    if pos + 8 > String.length s then truncated ~source pos "float";
    pos + 8
  | 5 ->
    let len, pos = read_varint ~source s pos in
    if len < 0 || pos + len > String.length s then
      truncated ~source pos "string of %d bytes" len;
    pos + len
  | 6 ->
    let n, pos = read_count ~source s pos in
    let pos = ref pos in
    for _ = 1 to n do
      let len, p = read_varint ~source s !pos in
      if len < 0 || p + len > String.length s then
        truncated ~source !pos "field name of %d bytes" len;
      pos := skip_at ~source ~depth:(depth + 1) s (p + len)
    done;
    !pos
  | 7 | 8 | 9 ->
    let n, pos = read_count ~source s pos in
    let pos = ref pos in
    for _ = 1 to n do
      pos := skip_at ~source ~depth:(depth + 1) s !pos
    done;
    !pos
  | 10 ->
    let ndims, pos = read_count ~source s pos in
    let pos = ref pos in
    for _ = 1 to ndims do
      pos := snd (read_varint ~source s !pos)
    done;
    let n, p = read_count ~source s !pos in
    pos := p;
    for _ = 1 to n do
      pos := skip_at ~source ~depth:(depth + 1) s !pos
    done;
    !pos
  | t -> Vida_error.parse_error ~source ~offset:(pos - 1) "unknown tag %d" t

let decode_field ?(source = default_source) s name =
  if String.length s = 0 || Char.code s.[0] <> 6 then None
  else (
    let n, pos = read_count ~source s 1 in
    let rec go i pos =
      if i >= n then None
      else
        let fname, pos = read_string ~source s pos in
        if String.equal fname name then
          Some (fst (decode_at ~source ~depth:0 s pos))
        else go (i + 1) (skip_at ~source ~depth:0 s pos)
    in
    go 0 pos)

let size = String.length
