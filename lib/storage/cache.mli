(** ViDa's data caches (paper §2.1, §5).

    Caches hold previously-accessed data — decoded columns, parsed objects,
    serialized binary JSON, raw-file positions — keyed by (source, item,
    layout). The same logical item may be cached under several layouts at
    once ("re-using and re-shaping results", §5). Bounded by an approximate
    byte budget with LRU eviction; updates to a source drop all its entries
    (§2.1). Hit/miss/eviction counters feed the experiments (the paper's
    ~80%-served-from-cache claim). *)

type payload =
  | Values of Vida_data.Value.t array  (** decoded column / object array *)
  | Strings of string array  (** raw text or VBSON per item *)
  | Ranges of (int * int) array  (** positions into the raw file *)

type key = { source : string; item : string; layout : Layout.t }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  stale_drops : int;
      (** entries dropped because the source file's fingerprint changed *)
  budget_evictions : int;
      (** a governed query's own LRU entries evicted to keep its cache
          footprint within its memory budget *)
  budget_refusals : int;
      (** admissions refused because they could not fit the admitting
          query's memory budget even after evicting its own entries *)
  resident_bytes : int;
  entries : int;
}

type t

(** [create ~capacity_bytes ()] — default capacity 256 MB. *)
val create : ?capacity_bytes:int -> unit -> t

(** [find ?fingerprint t key] returns the payload and counts a hit; a miss
    is counted otherwise. When [fingerprint] (the source file's current
    encoded {!Vida_raw.Fingerprint}) is given and the entry was stored with
    a different one, the entry is {e dropped} (counted under
    [stale_drops]) and the lookup misses — a changed file must never be
    served from stale cache. *)
val find : ?fingerprint:string -> t -> key -> payload option

(** [mem t key] checks without touching recency, counters or staleness. *)
val mem : t -> key -> bool

(** [put ?fingerprint t key payload] inserts (replacing any previous
    entry), evicting least-recently-used entries if over capacity,
    recording [fingerprint] for staleness checks on later [find]s. A
    payload larger than the whole capacity is refused (returns [false]).

    When the ambient {!Vida_governor.Governor} session carries a memory
    budget, the admission is charged against that query's budget: under
    pressure the query's {e own} least-recently-used admissions are
    evicted first ([budget_evictions]), and an entry that still cannot
    fit is refused ([budget_refusals]) — one query cannot pollute the
    shared cache past its budget. *)
val put : ?fingerprint:string -> t -> key -> payload -> bool

(** [find_or_add ?fingerprint t key f] is [find], computing and inserting
    via [f] on a miss. *)
val find_or_add : ?fingerprint:string -> t -> key -> (unit -> payload) -> payload

(** [entries_of_source t source] snapshots the resident entries of
    [source] (key, payload, stored fingerprint) — used by append-aware
    repair to extend cached columns with appended rows and re-[put] them
    under the new fingerprint instead of losing them to stale-drops. *)
val entries_of_source : t -> string -> (key * payload * string option) list

(** [invalidate_source t source] drops every entry of [source]. *)
val invalidate_source : t -> string -> unit

val clear : t -> unit
val stats : t -> stats
val reset_stats : t -> unit

(** [payload_bytes p] is the approximate in-memory size used for
    accounting. *)
val payload_bytes : payload -> int

(** [value_bytes v] is the approximate in-memory size of one value — the
    unit the engines use to charge materialized operator state (join build
    sides, product snapshots) against a governor memory budget. *)
val value_bytes : Vida_data.Value.t -> int

val pp_stats : Format.formatter -> stats -> unit
