open Vida_data

type payload =
  | Values of Value.t array
  | Strings of string array
  | Ranges of (int * int) array

type key = { source : string; item : string; layout : Layout.t }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  stale_drops : int;
  budget_evictions : int;
  budget_refusals : int;
  resident_bytes : int;
  entries : int;
}

type entry = {
  payload : payload;
  bytes : int;
  fingerprint : string option;
      (* encoded Fingerprint of the source file the payload was derived
         from; [None] for payloads with no file backing *)
  owner : int option;
      (* governor session that admitted the entry, for per-query budget
         accounting; [None] for ungoverned admissions *)
  mutable last_used : int;
}

(* All mutable state below is guarded by [lock]: concurrent scans on
   several domains admit, touch and evict entries through the public
   operations, each of which holds the mutex for its whole critical
   section so the LRU clock, resident accounting and stat counters can
   never be torn. Only [find_or_add] releases the lock while deriving a
   missing payload (a duplicated derivation is harmless; a lock held
   across a raw-file scan is not). *)
type t = {
  lock : Vida_sync.Lock.t;
  table : (key, entry) Hashtbl.t;
  capacity : int;
  owner_resident : (int, int) Hashtbl.t;  (* session id -> admitted bytes *)
  mutable clock : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable stale_drops : int;
  mutable budget_evictions : int;
  mutable budget_refusals : int;
}

let create ?(capacity_bytes = 256 * 1024 * 1024) () =
  { lock = Vida_sync.Lock.create ~rank:55 ~name:"storage.cache" ();
    table = Hashtbl.create 64;
    capacity = capacity_bytes;
    owner_resident = Hashtbl.create 8; clock = 0; resident = 0;
    hits = 0; misses = 0; evictions = 0; invalidations = 0; stale_drops = 0;
    budget_evictions = 0; budget_refusals = 0 }

let locked t f = Vida_sync.Lock.protect t.lock f

let rec value_bytes (v : Value.t) =
  match v with
  | Value.Null | Value.Bool _ -> 8
  | Value.Int _ | Value.Float _ -> 16
  | Value.String s -> 24 + String.length s
  | Value.Record fields ->
    List.fold_left (fun acc (n, v) -> acc + String.length n + 16 + value_bytes v) 16 fields
  | Value.List vs | Value.Bag vs | Value.Set vs ->
    List.fold_left (fun acc v -> acc + 8 + value_bytes v) 16 vs
  | Value.Array { data; _ } ->
    Array.fold_left (fun acc v -> acc + 8 + value_bytes v) 32 data

let payload_bytes = function
  | Values vs -> Array.fold_left (fun acc v -> acc + 8 + value_bytes v) 16 vs
  | Strings ss -> Array.fold_left (fun acc s -> acc + 24 + String.length s) 16 ss
  | Ranges rs -> 16 + (16 * Array.length rs)

let touch t entry =
  t.clock <- t.clock + 1;
  entry.last_used <- t.clock

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

let credit_owner t entry =
  match entry.owner with
  | None -> ()
  | Some id -> (
    match Hashtbl.find_opt t.owner_resident id with
    | None -> ()
    | Some bytes ->
      let bytes = bytes - entry.bytes in
      if bytes <= 0 then Hashtbl.remove t.owner_resident id
      else Hashtbl.replace t.owner_resident id bytes)

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some entry ->
    t.resident <- t.resident - entry.bytes;
    credit_owner t entry;
    Hashtbl.remove t.table key

(* An entry whose stored fingerprint no longer matches the file's current
   fingerprint was derived from bytes that have since changed: serving it
   would return garbage, so it is dropped and the lookup misses (§2.1
   auxiliary-structure invalidation applied to cached data). An entry with
   no stored fingerprint predates fingerprinting and is served as-is. *)
let find_unlocked ?fingerprint t key =
  Vida_sync.Lock.assert_held t.lock;
  match Hashtbl.find_opt t.table key with
  | Some entry -> (
    match entry.fingerprint, fingerprint with
    | Some stored, Some current when not (String.equal stored current) ->
      remove t key;
      t.stale_drops <- t.stale_drops + 1;
      t.misses <- t.misses + 1;
      None
    | _ ->
      t.hits <- t.hits + 1;
      touch t entry;
      Some entry.payload)
  | None ->
    t.misses <- t.misses + 1;
    None

let find ?fingerprint t key = locked t (fun () -> find_unlocked ?fingerprint t key)

let evict_until t needed =
  while t.resident + needed > t.capacity && Hashtbl.length t.table > 0 do
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, best) when best.last_used <= entry.last_used -> acc
          | _ -> Some (key, entry))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
      remove t key;
      t.evictions <- t.evictions + 1
  done

(* Least-recently-used entry admitted by governor session [id]. *)
let evict_owner_lru t id =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        if entry.owner = Some id then (
          match acc with
          | Some (_, best) when best.last_used <= entry.last_used -> acc
          | _ -> Some (key, entry))
        else acc)
      t.table None
  in
  match victim with
  | None -> false
  | Some (key, _) ->
    remove t key;
    t.budget_evictions <- t.budget_evictions + 1;
    true

(* Per-query admission control (the paper's cache-pollution concern): a
   governed query's resident cache footprint may not exceed its memory
   budget. Under pressure the query's own least-recently-used admissions
   are evicted first; an entry that cannot fit even then is refused — the
   query still runs (it just re-derives from raw later), the shared cache
   stays usable for everyone else, and no stale data is ever introduced. *)
let admit t bytes =
  match Vida_governor.Governor.cache_budget () with
  | None -> Some None
  | Some (id, budget) ->
    let resident () =
      match Hashtbl.find_opt t.owner_resident id with Some b -> b | None -> 0
    in
    if bytes > budget then (
      t.budget_refusals <- t.budget_refusals + 1;
      None)
    else (
      while resident () + bytes > budget && evict_owner_lru t id do () done;
      if resident () + bytes > budget then (
        t.budget_refusals <- t.budget_refusals + 1;
        None)
      else (
        Hashtbl.replace t.owner_resident id (resident () + bytes);
        Some (Some id)))

let put_unlocked ?fingerprint t key payload =
  Vida_sync.Lock.assert_held t.lock;
  let bytes = payload_bytes payload in
  if bytes > t.capacity then false
  else (
    remove t key;
    match admit t bytes with
    | None -> false
    | Some owner ->
      evict_until t bytes;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.table key
        { payload; bytes; fingerprint; owner; last_used = t.clock };
      t.resident <- t.resident + bytes;
      true)

let put ?fingerprint t key payload =
  locked t (fun () -> put_unlocked ?fingerprint t key payload)

(* The payload is derived with the lock released: a concurrent domain may
   derive the same payload — both derivations are correct, the second
   [put] simply replaces the first — whereas holding the lock across a
   raw-file scan would serialize every other cache user behind it. *)
let find_or_add ?fingerprint t key f =
  match find ?fingerprint t key with
  | Some p -> p
  | None ->
    let p = f () in
    ignore (put ?fingerprint t key p);
    p

(* Snapshot of a source's resident entries, for append-aware repair: the
   repairer extends each payload with values from the appended rows and
   re-[put]s it under the new fingerprint, instead of losing the whole
   entry to a stale-drop. *)
let entries_of_source t source =
  locked t (fun () ->
      Hashtbl.fold
        (fun key entry acc ->
          if String.equal key.source source then
            (key, entry.payload, entry.fingerprint) :: acc
          else acc)
        t.table [])

let invalidate_source t source =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun key _ acc ->
            if String.equal key.source source then key :: acc else acc)
          t.table []
      in
      List.iter
        (fun key ->
          remove t key;
          t.invalidations <- t.invalidations + 1)
        victims)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Hashtbl.reset t.owner_resident;
      t.resident <- 0)

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        invalidations = t.invalidations; stale_drops = t.stale_drops;
        budget_evictions = t.budget_evictions;
        budget_refusals = t.budget_refusals;
        resident_bytes = t.resident; entries = Hashtbl.length t.table })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.invalidations <- 0;
      t.stale_drops <- 0;
      t.budget_evictions <- 0;
      t.budget_refusals <- 0)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "hits=%d misses=%d evictions=%d invalidations=%d stale_drops=%d budget_evictions=%d budget_refusals=%d resident=%dB entries=%d"
    s.hits s.misses s.evictions s.invalidations s.stale_drops s.budget_evictions
    s.budget_refusals s.resident_bytes s.entries
