(** VBSON: a compact binary serialization of {!Vida_data.Value.t}.

    Plays MongoDB-BSON's role in the paper: materializing intermediate JSON
    results in binary form avoids re-parsing text per query (paper §5,
    Figure 4 (b)) at the price of an encode step. The format is
    length-prefixed so decoders can skip subtrees.

    {v
    value := tag byte, payload
    tags:  0 null | 1 false | 2 true | 3 int (zigzag varint)
         | 4 float (8 bytes LE) | 5 string (varint len, bytes)
         | 6 record (varint n, n × (string name, value))
         | 7 list | 8 bag | 9 set (varint n, n × value)
         | 10 array (varint ndims, dims, varint n, n × value)
    v} *)

val encode : Vida_data.Value.t -> string

(** Decoders raise {!Vida_error.Error} on malformed buffers — [Truncated]
    when bytes run out (or a count promises more items than bytes remain,
    the guard against allocation bombs from corrupt varints),
    [Parse_error] on unknown tags or trailing bytes, [Resource_limit] on
    nesting deeper than {!Vida_error.Limits} allows. [source] (default
    ["vbson"]) names the buffer's origin in those errors. *)

val decode : ?source:string -> string -> Vida_data.Value.t

(** [decode_prefix s ~pos] decodes one value starting at [pos], returning it
    with the offset just past it — for readers of concatenated values (e.g.
    serialized tuples in heap pages). *)
val decode_prefix : ?source:string -> string -> pos:int -> Vida_data.Value.t * int

(** [decode_field s name] extracts one top-level record field without
    decoding siblings (subtree-skipping). [None] when [s] is not a record
    or lacks the field. *)
val decode_field : ?source:string -> string -> string -> Vida_data.Value.t option

(** [size s] is the encoded size in bytes (= [String.length s]). *)
val size : string -> int
