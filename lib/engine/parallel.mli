(** Morsel-driven parallel execution (paper §8 cites parallel operators
    for in-situ processing; monoids make it principled: any monoid
    aggregation splits into per-morsel partial folds merged back in
    source order).

    Supported plan shapes, each over Select*/Map* chains on single
    columnar sources (CSV, binary array, JSON lines, XML, inline
    records):

    - [Reduce] with {e any} monoid — partials merge in morsel order, so
      non-commutative collection monoids (list/array) concatenate
      correctly;
    - [Reduce] over an equi-[Join] of two such chains — parallel hash
      build (stitched in right-source order) then parallel probe+fold;
    - a bare chain — parallel filtered/projected materialization,
      concatenated in morsel order.

    Needed columns are faulted in once on the calling domain (through the
    ordinary plugins and caches); workers then read only immutable arrays
    and their own task-compiled closures, polling the caller's governor
    session through atomic counters. Floating-point accumulations are
    reassociated by the split, so float aggregates can differ from the
    sequential result in the last bits. *)

(** One reason the engine declined (part of) a plan for worker execution:
    [where] names the position ("fold head", "join key", "chain filter",
    …), [reason] is the effect-analysis verdict rendered by
    {!Vida_analysis.Effects.reason_to_string}. *)
type decline = { where : string; reason : string }

(** Declines recorded by the most recent {!try_query} call, in the order
    they were hit. Empty when the plan parallelized (or was never
    gated on an expression verdict). *)
val last_declines : unit -> decline list

(** Observation hook for this module's own plan-shape rewrites
    (["parallel-neutralize-count-head"], ["parallel-filter-pushdown"]) —
    same contract as {!Vida_optimizer.Rules.checker}: called once per
    firing with the rule named; may raise to abort. *)
val checker :
  (rule:string ->
  before:Vida_algebra.Plan.t ->
  after:Vida_algebra.Plan.t ->
  unit)
  ref

(** [with_checker f body] installs [f] for the duration of [body]
    (exception-safe, restores the previous hook). *)
val with_checker :
  (rule:string ->
  before:Vida_algebra.Plan.t ->
  after:Vida_algebra.Plan.t ->
  unit) ->
  (unit -> 'a) -> 'a

(** [try_query ctx ?domains plan] — [None] when the plan is outside the
    parallelizable fragment or the effective domain budget is 1 (callers
    fall back to {!Compile.query}; with [domains = 1] the sequential
    engines are authoritative). [domains] defaults to
    [ctx.domains]; either is clamped per region to the row count and the
    {!Vida_raw.Morsel} minimum-rows floor. *)
val try_query :
  Plugins.ctx -> ?domains:int -> Vida_algebra.Plan.t -> Vida_data.Value.t option
