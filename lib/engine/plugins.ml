open Vida_data
open Vida_calculus
open Vida_catalog
open Vida_storage

type ctx = {
  registry : Registry.t;
  cache : Cache.t;
  structures : Structures.t;
  params : (string * Value.t) list;
  cleaning : (string, Vida_cleaning.Policy.t) Hashtbl.t;
  bad_rows : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  structural_quarantined : (string, unit) Hashtbl.t;
      (* sources whose structural bad spans (e.g. malformed XML elements)
         were already copied into the policy's quarantine report *)
  restored_quarantine :
    (string, Vida_cleaning.Policy.quarantine_entry list) Hashtbl.t;
      (* quarantine entries restored from a state directory — recorded by
         an earlier process, merged into {!quarantine_report} so the
         ledger survives restarts; dropped with the rest of the ledger on
         policy change or invalidation *)
  feedback : Feedback.t;
  domains : int;
      (* domain budget for parallel regions (morsel folds, chunked
         auxiliary-structure builds); 1 = strictly sequential *)
  lock : Vida_sync.Lock.t;
      (* guards [cleaning]/[bad_rows]/[structural_quarantined] under
         concurrent sessions; the unlocked per-row bad-set probes are the
         registered race-allowed cell [bad_rows_cell] below *)
}

exception Engine_error of string

let engine_error fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

(* The per-source bad-row sets are written under [ctx.lock] but probed
   per row without it inside generated producers. The race is tolerated
   by design — OCaml hashtables are memory-safe under races, and the
   worst case is a row a concurrently-cleaning query just marked being
   transiently included, the same answer a serial schedule running that
   query a moment later would give — so the cell is registered
   race-allowed with the sanitizer rather than asserted lock-protected. *)
let bad_rows_cell = "plugins.bad-rows"

let () =
  Vida_sync.Cell.allow_race ~name:bad_rows_cell
    ~justification:
      "per-row membership probes of a fetched bad set; hashtables are \
       memory-safe under races and a transiently-included row matches some \
       serial schedule"

let create_ctx ?cache_capacity ?(params = []) ?domains registry =
  let cache =
    match cache_capacity with
    | Some capacity_bytes -> Cache.create ~capacity_bytes ()
    | None -> Cache.create ()
  in
  { registry; cache; structures = Structures.create (); params;
    cleaning = Hashtbl.create 4; bad_rows = Hashtbl.create 4;
    structural_quarantined = Hashtbl.create 4;
    restored_quarantine = Hashtbl.create 4;
    feedback = Feedback.create ();
    domains = Vida_raw.Morsel.resolve ?requested:domains ();
    lock = Vida_sync.Lock.create ~rank:45 ~name:"engine.plugins" () }

let whole_object_item = "__object__"

(* Encoded fingerprint used to stamp and validate cache entries of a
   source; [None] for inline/external sources. Under an ambient
   {!Vida_raw.Epoch} the query's pinned generation is used — entries are
   stamped with (and hits validated against) the generation the query runs
   on, so a concurrent writer can never mix two generations through the
   cache. Outside an epoch the file is probed directly (sampled windows,
   no [Raw_buffer]/[Io_stats] — validating cached entries does not count
   as raw access). *)
let source_fingerprint (source : Source.t) =
  match Vida_raw.Epoch.pinned source.Source.name with
  | Some fp -> Some (Vida_raw.Fingerprint.encode fp)
  | None -> (
    match source.Source.path with
    | None -> None
    | Some path ->
      Option.map Vida_raw.Fingerprint.encode (Vida_raw.Fingerprint.probe path))

(* Cache accessors that stamp entries with the backing file's fingerprint:
   a [find] after the file changed drops the stale entry and misses, so the
   column is re-derived from the current bytes instead of served as
   garbage. *)
let cache_find ctx (source : Source.t) key =
  Cache.find ?fingerprint:(source_fingerprint source) ctx.cache key

let cache_put ctx (source : Source.t) key payload =
  ignore (Cache.put ?fingerprint:(source_fingerprint source) ctx.cache key payload)

let locked ctx f = Vida_sync.Lock.protect ctx.lock f

let cleaning_policy ctx source =
  match locked ctx (fun () -> Hashtbl.find_opt ctx.cleaning source) with
  | Some p -> p
  | None -> Vida_cleaning.Policy.default

let bad_set ctx source =
  locked ctx (fun () ->
      match Hashtbl.find_opt ctx.bad_rows source with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace ctx.bad_rows source s;
        s)

let mark_bad ctx bad row =
  Vida_sync.Cell.write ~name:bad_rows_cell ~site:"plugins.mark-bad";
  locked ctx (fun () -> Hashtbl.replace bad row ())

let bad_row_count ctx source =
  locked ctx (fun () ->
      match Hashtbl.find_opt ctx.bad_rows source with
      | Some s -> Hashtbl.length s
      | None -> 0)

(* --- CSV --- *)

(* Fetch one decoded column through the cache, loading [missing] columns in
   a single piggy-backed scan when needed. *)
let csv_columns ctx (source : Source.t) schema fs =
  let name = source.Source.name in
  let key f = { Cache.source = name; item = f; layout = Layout.Values } in
  let policy = cleaning_policy ctx name in
  (* Under a row-skipping policy every field participates in the skip
     decision, not just the projected ones — otherwise the rows a query
     sees would depend on how aggressively its plan pruned fields, and
     engines with different pruning would disagree on damaged files. *)
  let scan_fs =
    match Vida_cleaning.Policy.on_error policy with
    | Vida_cleaning.Policy.Skip_row | Vida_cleaning.Policy.Quarantine ->
      fs @ List.filter (fun f -> not (List.mem f fs)) (Schema.names schema)
    | _ -> fs
  in
  let lookups =
    List.map
      (fun f ->
        match Schema.index schema f with
        | None -> (f, `Absent)
        | Some col -> (
          match cache_find ctx source (key f) with
          | Some (Cache.Values vs) -> (f, `Cached vs)
          | Some _ | None -> (f, `Missing col)))
      scan_fs
  in
  let missing =
    List.filter_map (function f, `Missing col -> Some (f, col) | _ -> None) lookups
  in
  let loaded = Hashtbl.create 8 in
  if missing <> [] then (
    let pm = Structures.posmap ~domains:ctx.domains ctx.structures source in
    let nrows = Vida_raw.Positional_map.row_count pm in
    (* field types hoisted out of the per-row callback: one schema lookup
       per column for the whole scan, not one per cell *)
    let arrays =
      List.map
        (fun (f, col) ->
          let ty = (Schema.attr schema (Schema.index_exn schema f)).Schema.ty in
          (f, ty, col, Array.make nrows Value.Null))
        missing
    in
    let cols = List.map (fun (_, _, col, _) -> col) arrays in
    let bad = bad_set ctx source.Source.name in
    Vida_raw.Positional_map.record_while_scanning pm ~cols (fun row fields ->
        let span =
          (* raw byte range of the row, for quarantine reporting *)
          let start, stop = Vida_raw.Positional_map.row_bounds pm row in
          (name, start, stop - start)
        in
        List.iteri
          (fun i (f, ty, _, arr) ->
            match Vida_cleaning.Policy.clean ~span policy ~field:f ty fields.(i) with
            | Ok (Some v) -> arr.(row) <- v
            | Ok None ->
              (* problematic entry: remember it; generated code skips it *)
              mark_bad ctx bad row
            | Error msg ->
              let _, offset, _ = span in
              Vida_error.parse_error ~source:name ~offset "%s" msg)
          arrays);
    List.iter
      (fun (f, _, _, arr) ->
        cache_put ctx source (key f) (Cache.Values arr);
        Hashtbl.replace loaded f arr)
      arrays);
  let nrows = ref (-1) in
  let columns =
    (* widened fields were scanned only for the skip decision: the caller
       gets exactly the columns it asked for *)
    List.map
      (fun f ->
        match List.assoc f lookups with
        | `Absent -> (f, `Null)
        | `Cached vs ->
          nrows := Array.length vs;
          (f, `Col vs)
        | `Missing _ ->
          let arr = Hashtbl.find loaded f in
          nrows := Array.length arr;
          (f, `Col arr))
      fs
  in
  let nrows =
    if !nrows >= 0 then !nrows
    else Vida_raw.Positional_map.row_count (Structures.posmap ~domains:ctx.domains ctx.structures source)
  in
  (columns, nrows)

let csv_producer ctx (source : Source.t) schema need consumer =
  let fs =
    match need with
    | Analysis.Whole -> Schema.names schema
    | Analysis.Fields fs -> fs
  in
  let columns, nrows = csv_columns ctx source schema fs in
  let name = source.Source.name in
  let bad = bad_set ctx name in
  (* one sanitizer access per producer run stands in for the per-row
     probes below — same lockset evidence without per-row overhead *)
  Vida_sync.Cell.read ~name:bad_rows_cell ~site:"plugins.csv-producer";
  for row = 0 to nrows - 1 do
    (* cache-served rows bypass the raw scan loops, so the epoch tick
       lives here too — a fully-cached query still notices a writer *)
    Vida_raw.Epoch.check ~source:name ();
    if not (Hashtbl.mem bad row) then
      consumer
        (Value.Record
           (List.map
              (fun (f, col) ->
                match col with
                | `Null -> (f, Value.Null)
                | `Col arr -> (f, arr.(row)))
              columns))
  done

(* --- JSON lines --- *)

let json_field_column ctx (source : Source.t) f =
  let key = { Cache.source = source.Source.name; item = f; layout = Layout.Values } in
  match cache_find ctx source key with
  | Some (Cache.Values vs) -> vs
  | Some _ | None ->
    let si = Structures.semi_index ~domains:ctx.domains ctx.structures source in
    let n = Vida_raw.Semi_index.object_count si in
    let policy = cleaning_policy ctx source.Source.name in
    let bad = bad_set ctx source.Source.name in
    let arr =
      Array.init n (fun obj ->
          match Vida_raw.Semi_index.field_value si ~obj ~field:f with
          | v -> v
          | exception Vida_error.Error e -> (
            match Vida_cleaning.Policy.on_error policy with
            | Vida_cleaning.Policy.Strict -> raise (Vida_error.Error e)
            | Vida_cleaning.Policy.Null_value | Vida_cleaning.Policy.Nearest ->
              Value.Null
            | Vida_cleaning.Policy.Skip_row ->
              mark_bad ctx bad obj;
              Value.Null
            | Vida_cleaning.Policy.Quarantine ->
              let pos, len = Vida_raw.Semi_index.object_bounds si obj in
              Vida_cleaning.Policy.quarantine policy ~source:source.Source.name
                ~offset:pos ~length:len (Vida_error.to_string e);
              mark_bad ctx bad obj;
              Value.Null))
    in
    cache_put ctx source key (Cache.Values arr);
    arr

let json_producer ctx (source : Source.t) need consumer =
  match need with
  | Analysis.Fields fs ->
    let columns = List.map (fun f -> (f, json_field_column ctx source f)) fs in
    let n =
      match columns with
      | (_, arr) :: _ -> Array.length arr
      | [] ->
        Vida_raw.Semi_index.object_count (Structures.semi_index ~domains:ctx.domains ctx.structures source)
    in
    let bad = bad_set ctx source.Source.name in
    Vida_sync.Cell.read ~name:bad_rows_cell ~site:"plugins.json-producer";
    for obj = 0 to n - 1 do
      Vida_raw.Epoch.check ~source:source.Source.name ();
      if not (Hashtbl.mem bad obj) then
        consumer (Value.Record (List.map (fun (f, arr) -> (f, arr.(obj))) columns))
    done
  | Analysis.Whole -> (
    let name = source.Source.name in
    let key =
      { Cache.source = name; item = whole_object_item; layout = Layout.Vbson }
    in
    (* the declared element shape: damaged lines can decode to a stray
       scalar (e.g. a merged fragment parsing as a bare string), which must
       go through the cleaning policy like any parse failure — and a nulled
       record-typed object keeps its field names so projections stay safe *)
    let record_fields =
      match source.Source.format with
      | Source.Json_lines { element = Ty.Record fields } -> Some (List.map fst fields)
      | _ -> None
    in
    let null_object () =
      match record_fields with
      | Some fields -> Value.Record (List.map (fun f -> (f, Value.Null)) fields)
      | None -> Value.Null
    in
    let checked_object si obj =
      let v = Vida_raw.Semi_index.object_value si obj in
      match (v, record_fields) with
      | Value.Record _, _ | _, None -> v
      | _, Some _ ->
        let pos, _ = Vida_raw.Semi_index.object_bounds si obj in
        Vida_error.parse_error ~source:name ~offset:pos
          "record object expected, got %s" (Value.to_string v)
    in
    match cache_find ctx source key with
    | Some (Cache.Strings encoded) ->
      Array.iter
        (fun s ->
          Vida_raw.Epoch.check ~source:name ();
          if s <> "" then consumer (Vbson.decode ~source:name s))
        encoded
    | Some _ | None ->
      let si = Structures.semi_index ~domains:ctx.domains ctx.structures source in
      let n = Vida_raw.Semi_index.object_count si in
      let policy = cleaning_policy ctx name in
      let bad = bad_set ctx name in
      Vida_sync.Cell.read ~name:bad_rows_cell ~site:"plugins.json-whole-producer";
      (* an empty encoding marks an object dropped by the cleaning policy,
         so replays from cache skip the same objects *)
      let encoded = Array.make n "" in
      for obj = 0 to n - 1 do
        if not (Hashtbl.mem bad obj) then (
          match checked_object si obj with
          | v ->
            encoded.(obj) <- Vbson.encode v;
            consumer v
          | exception Vida_error.Error e -> (
            match Vida_cleaning.Policy.on_error policy with
            | Vida_cleaning.Policy.Strict -> raise (Vida_error.Error e)
            | Vida_cleaning.Policy.Null_value | Vida_cleaning.Policy.Nearest ->
              let v = null_object () in
              encoded.(obj) <- Vbson.encode v;
              consumer v
            | Vida_cleaning.Policy.Skip_row -> mark_bad ctx bad obj
            | Vida_cleaning.Policy.Quarantine ->
              let pos, len = Vida_raw.Semi_index.object_bounds si obj in
              Vida_cleaning.Policy.quarantine policy ~source:name ~offset:pos
                ~length:len (Vida_error.to_string e);
              mark_bad ctx bad obj))
      done;
      cache_put ctx source key (Cache.Strings encoded))

(* --- XML --- *)

(* The XML index is built tolerantly: malformed child elements are skipped
   and reported as bad spans. Copy those spans into the policy's quarantine
   report once per source (when the policy asks for quarantining). *)
let xml_index_reported ctx (source : Source.t) =
  let xi = Structures.xml_index ctx.structures source in
  let name = source.Source.name in
  (match Vida_cleaning.Policy.on_error (cleaning_policy ctx name) with
  | Vida_cleaning.Policy.Quarantine
    when locked ctx (fun () ->
             if Hashtbl.mem ctx.structural_quarantined name then false
             else (Hashtbl.replace ctx.structural_quarantined name (); true)) ->
    let policy = cleaning_policy ctx name in
    List.iter
      (fun (pos, len, reason) ->
        Vida_cleaning.Policy.quarantine policy ~source:name ~offset:pos
          ~length:len reason)
      (Vida_raw.Xml_index.bad_spans xi)
  | _ -> ());
  xi

let xml_field_column ctx (source : Source.t) f =
  let key = { Cache.source = source.Source.name; item = f; layout = Layout.Values } in
  match cache_find ctx source key with
  | Some (Cache.Values vs) -> vs
  | Some _ | None ->
    let xi = xml_index_reported ctx source in
    let n = Vida_raw.Xml_index.element_count xi in
    let arr = Array.init n (fun elem -> Vida_raw.Xml_index.field_value xi ~elem ~field:f) in
    cache_put ctx source key (Cache.Values arr);
    arr

let xml_producer ctx (source : Source.t) need consumer =
  match need with
  | Analysis.Fields fs ->
    let columns = List.map (fun f -> (f, xml_field_column ctx source f)) fs in
    let n =
      match columns with
      | (_, arr) :: _ -> Array.length arr
      | [] -> Vida_raw.Xml_index.element_count (xml_index_reported ctx source)
    in
    for elem = 0 to n - 1 do
      Vida_raw.Epoch.check ~source:source.Source.name ();
      consumer (Value.Record (List.map (fun (f, arr) -> (f, arr.(elem))) columns))
    done
  | Analysis.Whole -> (
    let name = source.Source.name in
    let key =
      { Cache.source = name; item = whole_object_item; layout = Layout.Vbson }
    in
    match cache_find ctx source key with
    | Some (Cache.Strings encoded) ->
      Array.iter
        (fun s ->
          Vida_raw.Epoch.check ~source:name ();
          consumer (Vbson.decode ~source:name s))
        encoded
    | Some _ | None ->
      let xi = xml_index_reported ctx source in
      let n = Vida_raw.Xml_index.element_count xi in
      let encoded = Array.make n "" in
      for elem = 0 to n - 1 do
        let v = Vida_raw.Xml_index.element_value xi elem in
        encoded.(elem) <- Vbson.encode v;
        consumer v
      done;
      cache_put ctx source key (Cache.Strings encoded))

(* --- binary arrays --- *)

let binarray_producer ctx (source : Source.t) need consumer =
  let ba = Structures.binarray ctx.structures source in
  let all_fields =
    List.map (fun f -> f.Vida_raw.Binarray.name) (Vida_raw.Binarray.header ba).fields
  in
  let fs =
    match need with
    | Analysis.Whole -> all_fields
    | Analysis.Fields fs -> fs
  in
  let name = source.Source.name in
  let n = Vida_raw.Binarray.cell_count ba in
  let columns =
    List.map
      (fun f ->
        match Vida_raw.Binarray.field_index ba f with
        | None -> (f, `Null)
        | Some idx ->
          let key = { Cache.source = name; item = f; layout = Layout.Values } in
          let arr =
            match cache_find ctx source key with
            | Some (Cache.Values vs) -> vs
            | Some _ | None ->
              let arr = Array.init n (fun cell -> Vida_raw.Binarray.get ba ~cell ~field:idx) in
              cache_put ctx source key (Cache.Values arr);
              arr
          in
          (f, `Col arr))
      fs
  in
  for cell = 0 to n - 1 do
    Vida_raw.Epoch.check ~source:name ();
    consumer
      (Value.Record
         (List.map
            (fun (f, col) ->
              match col with `Null -> (f, Value.Null) | `Col arr -> (f, arr.(cell)))
            columns))
  done

(* binarray scan with zone-map block skipping: the ranges are a
   conservative superset filter; the caller re-applies the exact
   predicate *)
let binarray_ranged_producer ctx (source : Source.t) need ~ranges consumer =
  let ba = Structures.binarray ctx.structures source in
  let all_fields =
    List.map (fun f -> f.Vida_raw.Binarray.name) (Vida_raw.Binarray.header ba).fields
  in
  let fs =
    match need with
    | Analysis.Whole -> all_fields
    | Analysis.Fields fs -> fs
  in
  let franges =
    List.filter_map
      (fun (fname, lo, hi) ->
        match Vida_raw.Binarray.field_index ba fname with
        | Some field -> Some { Vida_raw.Binarray.field; lo; hi }
        | None -> None)
      ranges
  in
  let idxs =
    List.map (fun f -> (f, Vida_raw.Binarray.field_index ba f)) fs
  in
  Vida_raw.Binarray.scan_filtered ba ~ranges:franges (fun cell ->
      consumer
        (Value.Record
           (List.map
              (fun (f, idx) ->
                match idx with
                | None -> (f, Value.Null)
                | Some field -> (f, Vida_raw.Binarray.get ba ~cell ~field))
              idxs)))

(* Column-array view of a source, for engines that fold over rows directly
   (e.g. the parallel reducer). [None] when the format has no columnar
   access or rows are being skipped by a cleaning policy (alignment would
   be unsafe). *)
let column_arrays ctx (source : Source.t) ~fields =
  if bad_row_count ctx source.Source.name > 0 then None
  else
    match source.Source.format with
    | Source.Csv { schema; _ } ->
      let columns, nrows = csv_columns ctx source schema fields in
      (* the scan above may itself have marked rows bad (cold cache):
         re-check, or the fast path would include rows the policy skips *)
      if bad_row_count ctx source.Source.name > 0 then None
      else
        Some
          ( nrows,
            List.map
              (fun (f, col) ->
                match col with
                | `Col arr -> (f, arr)
                | `Null -> (f, Array.make nrows Value.Null))
              columns )
    | Source.Binary_array ->
      let ba = Structures.binarray ctx.structures source in
      let n = Vida_raw.Binarray.cell_count ba in
      Some
        ( n,
          List.map
            (fun f ->
              match Vida_raw.Binarray.field_index ba f with
              | None -> (f, Array.make n Value.Null)
              | Some idx ->
                let key =
                  { Cache.source = source.Source.name; item = f; layout = Layout.Values }
                in
                let arr =
                  match cache_find ctx source key with
                  | Some (Cache.Values vs) -> vs
                  | Some _ | None ->
                    let arr =
                      Array.init n (fun cell -> Vida_raw.Binarray.get ba ~cell ~field:idx)
                    in
                    cache_put ctx source key (Cache.Values arr);
                    arr
                in
                (f, arr))
            fields )
    | Source.Inline v ->
      let elements = Array.of_list (Value.elements v) in
      let n = Array.length elements in
      (* non-record elements would make field extraction silently yield
         Null where the row engines raise a type error — decline instead *)
      if not (Array.for_all (function Value.Record _ -> true | _ -> false) elements)
      then None
      else
        Some
          ( n,
            List.map
              (fun f ->
                ( f,
                  Array.map
                    (fun e ->
                      match Value.field_opt e f with Some v -> v | None -> Value.Null)
                    elements ))
              fields )
    | Source.Json_lines _ ->
      let columns = List.map (fun f -> (f, json_field_column ctx source f)) fields in
      (* the cold column build may itself have marked objects bad — same
         re-check as the CSV path, or the columnar fold would include
         objects the cleaning policy skips *)
      if bad_row_count ctx source.Source.name > 0 then None
      else
        let n =
          match columns with
          | (_, arr) :: _ -> Array.length arr
          | [] ->
            Vida_raw.Semi_index.object_count
              (Structures.semi_index ~domains:ctx.domains ctx.structures source)
        in
        Some (n, columns)
    | Source.Xml _ ->
      let columns = List.map (fun f -> (f, xml_field_column ctx source f)) fields in
      let n =
        match columns with
        | (_, arr) :: _ -> Array.length arr
        | [] -> Vida_raw.Xml_index.element_count (xml_index_reported ctx source)
      in
      Some (n, columns)
    | Source.External _ -> None

(* --- generic --- *)

let materialize_source ctx (source : Source.t) =
  match source.Source.format with
  | Source.Inline v -> v
  | Source.Csv { schema; _ } ->
    let items = ref [] in
    csv_producer ctx source schema Analysis.Whole (fun v -> items := v :: !items);
    Value.Bag (List.rev !items)
  | Source.Json_lines _ ->
    let items = ref [] in
    json_producer ctx source Analysis.Whole (fun v -> items := v :: !items);
    Value.Bag (List.rev !items)
  | Source.Xml _ ->
    let items = ref [] in
    xml_producer ctx source Analysis.Whole (fun v -> items := v :: !items);
    Value.List (List.rev !items)
  | Source.Binary_array ->
    let ba = Structures.binarray ctx.structures source in
    Vida_raw.Binarray.to_value ba
  | Source.External { produce; _ } ->
    let items = ref [] in
    produce (fun v -> items := v :: !items);
    Value.Bag (List.rev !items)

let base_eval_env ctx =
  let env =
    List.fold_left (fun env (x, v) -> Eval.bind x v env) Eval.empty_env ctx.params
  in
  List.fold_left
    (fun env source -> Eval.bind source.Source.name (materialize_source ctx source) env)
    env
    (Registry.sources ctx.registry)

let source_count ctx (source : Source.t) =
  match source.Source.format with
  | Source.Inline v -> List.length (Value.elements v)
  | Source.Csv _ ->
    Vida_raw.Positional_map.row_count (Structures.posmap ~domains:ctx.domains ctx.structures source)
  | Source.Json_lines _ ->
    Vida_raw.Semi_index.object_count (Structures.semi_index ~domains:ctx.domains ctx.structures source)
  | Source.Xml _ ->
    Vida_raw.Xml_index.element_count (Structures.xml_index ctx.structures source)
  | Source.Binary_array ->
    Vida_raw.Binarray.cell_count (Structures.binarray ctx.structures source)
  | Source.External { count; _ } -> count ()

let producer ctx (expr : Expr.t) ~need consumer =
  match expr with
  | Expr.Var name -> (
    match Registry.find ctx.registry name with
    | Some source -> (
      match source.Source.format with
      | Source.Csv { schema; _ } -> csv_producer ctx source schema need consumer
      | Source.Json_lines _ -> json_producer ctx source need consumer
      | Source.Xml _ -> xml_producer ctx source need consumer
      | Source.Binary_array -> binarray_producer ctx source need consumer
      | Source.Inline v -> List.iter consumer (Value.elements v)
      | Source.External { produce; _ } -> produce consumer)
    | None -> (
      match List.assoc_opt name ctx.params with
      | Some v -> List.iter consumer (Value.elements v)
      | None -> engine_error "unknown source %s" name))
  | expr ->
    (* arbitrary source expression: generic interpreter fallback *)
    let v = Eval.eval (base_eval_env ctx) expr in
    (match v with
    | Value.Null -> ()
    | v -> List.iter consumer (Value.elements v))

let invalidate ctx name =
  Cache.invalidate_source ctx.cache name;
  Structures.invalidate ctx.structures name;
  locked ctx (fun () ->
      Hashtbl.remove ctx.bad_rows name;
      Hashtbl.remove ctx.structural_quarantined name;
      Hashtbl.remove ctx.restored_quarantine name);
  ignore (Registry.refresh ctx.registry name)

(* --- live-data refresh: append-aware incremental repair ---

   Paper §2.1 drops a source's auxiliary structures and caches when its
   file changes. For the append-only case (log-structured files, the
   common live-data shape — see {!Vida_raw.Delta}) that wastes every scan
   already paid for, so structures are extended in place
   ({!Structures.repair_appended}) and cached columns are extended with
   just the appended items and re-stamped with the new fingerprint. Any
   wrinkle — cleaning policies in force, rows already marked bad, a parse
   failure in the appended bytes, a payload shape we don't recognize —
   falls back to the paper's drop-and-rederive; extension is an
   optimization, never a correctness risk. *)

exception Unextendable

(* Old cells carry over; cells from [from] on are re-derived ([from] is
   one before the old item count for line-oriented formats, whose last old
   item may have been a partial line completed by the append). *)
let extended_values ~n ~from ~derive old =
  let arr = Array.make n Value.Null in
  Array.blit old 0 arr 0 from;
  for i = from to n - 1 do
    arr.(i) <- derive i
  done;
  arr

let extended_strings ~n ~from ~derive old =
  let arr = Array.make n "" in
  Array.blit old 0 arr 0 from;
  for i = from to n - 1 do
    arr.(i) <- derive i
  done;
  arr

let extend_csv_caches ctx (source : Source.t) pm ~old_rows ~fingerprint entries =
  let name = source.Source.name in
  let schema =
    match source.Source.format with
    | Source.Csv { schema; _ } -> schema
    | _ -> raise Unextendable
  in
  let n = Vida_raw.Positional_map.row_count pm in
  let from = max 0 (old_rows - 1) in
  let policy = cleaning_policy ctx name in
  List.iter
    (fun ((key : Cache.key), payload, _) ->
      match (payload, key.Cache.layout, Schema.index schema key.Cache.item) with
      | Cache.Values old, Layout.Values, Some col when Array.length old = old_rows ->
        let ty = (Schema.attr schema col).Schema.ty in
        let derive row =
          let start, stop = Vida_raw.Positional_map.row_bounds pm row in
          match
            Vida_cleaning.Policy.clean ~span:(name, start, stop - start) policy
              ~field:key.Cache.item ty
              (Vida_raw.Positional_map.field pm ~row ~col)
          with
          | Ok (Some v) -> v
          | Ok None | Error _ ->
            (* an appended row needs the full cleaning machinery *)
            raise Unextendable
        in
        ignore
          (Cache.put ~fingerprint ctx.cache key
             (Cache.Values (extended_values ~n ~from ~derive old)))
      | _ -> ()  (* unrecognized shape: left to stale-drop on next access *))
    entries

let extend_json_caches ctx (source : Source.t) si ~old_objects ~fingerprint entries =
  let n = Vida_raw.Semi_index.object_count si in
  let from = max 0 (old_objects - 1) in
  let record_fields =
    match source.Source.format with
    | Source.Json_lines { element = Ty.Record fields } -> Some (List.map fst fields)
    | _ -> None
  in
  List.iter
    (fun ((key : Cache.key), payload, _) ->
      match (payload, key.Cache.layout) with
      | Cache.Values old, Layout.Values when Array.length old = old_objects ->
        let derive obj =
          Vida_raw.Semi_index.field_value si ~obj ~field:key.Cache.item
        in
        ignore
          (Cache.put ~fingerprint ctx.cache key
             (Cache.Values (extended_values ~n ~from ~derive old)))
      | Cache.Strings old, Layout.Vbson
        when String.equal key.Cache.item whole_object_item
             && Array.length old = old_objects ->
        let derive obj =
          let v = Vida_raw.Semi_index.object_value si obj in
          (match (v, record_fields) with
          | Value.Record _, _ | _, None -> ()
          | _ -> raise Unextendable (* stray scalar: policy's business *));
          Vbson.encode v
        in
        ignore
          (Cache.put ~fingerprint ctx.cache key
             (Cache.Strings (extended_strings ~n ~from ~derive old)))
      | _ -> ())
    entries

(* XML elements are whole (an element's bounds never straddle old EOF:
   the resume point backs up before any span that did), so old cells are
   all kept. *)
let extend_xml_caches ctx xi ~old_elements ~fingerprint entries =
  let n = Vida_raw.Xml_index.element_count xi in
  List.iter
    (fun ((key : Cache.key), payload, _) ->
      match (payload, key.Cache.layout) with
      | Cache.Values old, Layout.Values when Array.length old = old_elements ->
        let derive elem =
          Vida_raw.Xml_index.field_value xi ~elem ~field:key.Cache.item
        in
        ignore
          (Cache.put ~fingerprint ctx.cache key
             (Cache.Values (extended_values ~n ~from:old_elements ~derive old)))
      | Cache.Strings old, Layout.Vbson
        when String.equal key.Cache.item whole_object_item
             && Array.length old = old_elements ->
        let derive elem = Vbson.encode (Vida_raw.Xml_index.element_value xi elem) in
        ignore
          (Cache.put ~fingerprint ctx.cache key
             (Cache.Strings (extended_strings ~n ~from:old_elements ~derive old)))
      | _ -> ())
    entries

let extend_source_caches ctx (source : Source.t) (r : Structures.repair) =
  let name = source.Source.name in
  let entries = Cache.entries_of_source ctx.cache name in
  if entries <> [] then (
    let fingerprint =
      Vida_raw.Fingerprint.encode
        (Vida_raw.Fingerprint.of_buffer r.Structures.new_buffer)
    in
    match (r.Structures.csv, r.Structures.json, r.Structures.xml) with
    | Some (pm, old_rows), _, _ ->
      extend_csv_caches ctx source pm ~old_rows ~fingerprint entries
    | _, Some (si, old_objects), _ ->
      extend_json_caches ctx source si ~old_objects ~fingerprint entries
    | _, _, Some (xi, old_elements, new_list_tag) ->
      if new_list_tag then
        (* normalized shape of old elements changed (a tag became a
           list): cached element values are wrong, drop them *)
        Cache.invalidate_source ctx.cache name
      else extend_xml_caches ctx xi ~old_elements ~fingerprint entries
    | None, None, None ->
      (* no structure to extend from (binary arrays re-open; or nothing
         was built): old-generation entries stale-drop on access anyway,
         but drop them now so the source presents one generation *)
      Cache.invalidate_source ctx.cache name)

let try_extend ctx (source : Source.t) =
  let name = source.Source.name in
  let r = Structures.repair_appended ctx.structures source in
  let dirty =
    locked ctx (fun () ->
        (match Hashtbl.find_opt ctx.bad_rows name with
        | Some s -> Hashtbl.length s > 0
        | None -> false)
        || Hashtbl.mem ctx.cleaning name)
  in
  if dirty then (
    (* columns were derived under a cleaning policy (rows skipped,
       values repaired): extension would need to replay the policy over
       appended rows including its side effects — drop the caches and
       let the next scan re-derive everything under the policy *)
    Cache.invalidate_source ctx.cache name;
    locked ctx (fun () ->
        Hashtbl.remove ctx.bad_rows name;
        Hashtbl.remove ctx.structural_quarantined name))
  else
    try extend_source_caches ctx source r
    with _ ->
      (* malformed appended bytes, shape surprises: the structures stay
         extended (they are navigation only), the caches re-derive *)
      Cache.invalidate_source ctx.cache name

let refresh_source ctx (source : Source.t) =
  let name = source.Source.name in
  let rebuilt () = invalidate ctx name; `Rebuilt in
  match source.Source.path with
  | None -> `Unchanged
  | Some path -> (
    match Structures.peek_buffer ctx.structures name with
    | Some buf when Vida_raw.Raw_buffer.loaded buf -> (
      let old_fp = Vida_raw.Fingerprint.of_buffer buf in
      match Vida_raw.Delta.classify ~old_fp path with
      | Vida_raw.Delta.Unchanged ->
        (* content is current; a drifted cheap snapshot (mtime-only
           change, e.g. touch(1)) just re-snapshots the registry *)
        if Source.stale source then ignore (Registry.refresh ctx.registry name);
        `Unchanged
      | Vida_raw.Delta.Appended _ -> (
        match try_extend ctx source with
        | () ->
          ignore (Registry.refresh ctx.registry name);
          `Extended
        | exception _ -> rebuilt ())
      | Vida_raw.Delta.Rewritten | Vida_raw.Delta.Truncated _
      | Vida_raw.Delta.Vanished ->
        rebuilt ())
    | _ ->
      (* nothing derived yet: the registration-time snapshot decides *)
      if Source.stale source then rebuilt () else `Unchanged)

let set_cleaning ctx ~source policy =
  locked ctx (fun () -> Hashtbl.replace ctx.cleaning source policy);
  (* decoded columns were produced under the old policy *)
  Cache.invalidate_source ctx.cache source;
  locked ctx (fun () ->
      Hashtbl.remove ctx.bad_rows source;
      Hashtbl.remove ctx.structural_quarantined source;
      Hashtbl.remove ctx.restored_quarantine source)

(* Quarantined raw spans recorded for [source] so far (empty unless its
   policy is [Quarantine]), prefixed with any entries restored from a
   state directory. *)
let quarantine_report ctx source =
  let restored =
    locked ctx (fun () ->
        Option.value ~default:[] (Hashtbl.find_opt ctx.restored_quarantine source))
  in
  let live = Vida_cleaning.Policy.quarantined (cleaning_policy ctx source) in
  (* a warm scan may rediscover a restored span (the column materializer
     re-cleans every row); report each known-bad span once *)
  let rediscovered e =
    List.exists
      (fun l ->
        l.Vida_cleaning.Policy.q_offset = e.Vida_cleaning.Policy.q_offset
        && l.Vida_cleaning.Policy.q_length = e.Vida_cleaning.Policy.q_length)
      live
  in
  List.filter (fun e -> not (rediscovered e)) restored @ live

(* --- durable quarantine ledger ---

   What the cleaning machinery has learned about a damaged source — which
   rows are bad, whether its structure was quarantined wholesale, which
   raw spans were rejected and why — is paid for with full scans. These
   two let the state directory carry that ledger across a restart; the
   caller (the [Vida] facade) owns staleness: a ledger is only restored
   when the source file's fingerprint still matches the one stamped at
   export. *)

let ledger_export ctx source =
  let quarantined = quarantine_report ctx source in
  locked ctx (fun () ->
      let bad =
        match Hashtbl.find_opt ctx.bad_rows source with
        | Some s -> List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) s [])
        | None -> []
      in
      (bad, Hashtbl.mem ctx.structural_quarantined source, quarantined))

let ledger_restore ctx ~source ~bad ~structural ~quarantined =
  Vida_sync.Cell.write ~name:bad_rows_cell ~site:"plugins.ledger-restore";
  locked ctx (fun () ->
      (if bad <> [] then (
         let s =
           match Hashtbl.find_opt ctx.bad_rows source with
           | Some s -> s
           | None ->
             let s = Hashtbl.create 8 in
             Hashtbl.replace ctx.bad_rows source s;
             s
         in
         List.iter (fun r -> Hashtbl.replace s r ()) bad));
      if structural then Hashtbl.replace ctx.structural_quarantined source ();
      if quarantined <> [] then
        Hashtbl.replace ctx.restored_quarantine source quarantined)
