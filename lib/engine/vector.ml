open Vida_data
open Vida_calculus
open Vida_algebra
open Vida_catalog
module Governor = Vida_governor.Governor
module Epoch = Vida_raw.Epoch
module Binarray = Vida_raw.Binarray
module BA1 = Bigarray.Array1

(* Vectorized batch execution (paper §4: "operate over raw data as fast as
   the hardware allows").

   The closure engine executes tuple-at-a-time: per row it pays a governor
   poll, a record allocation, a closure call per operator and a monoid
   merge allocation. This module replaces that hot loop for the commonest
   plan shape — Reduce over a Select*/Map* chain on one columnar source —
   with batch-at-a-time kernels:

   - source columns live in unboxed buffers ([Bigarray] float64/int) plus
     a byte validity mask (1 = non-NULL), promoted once per physical
     column (memoized) or batch-decoded straight out of a binary-array
     file ({!Binarray.fill_floats});
   - a selection vector (row indices surviving the filters so far) is
     threaded through the operators instead of materializing intermediate
     rows; filters compact it in place, binds evaluate into dense buffers
     aligned with it;
   - select→map→reduce is fused: each batch runs a handful of tight array
     loops and folds directly into a scalar accumulator;
   - governor cancellation polls, epoch ticks and memory charges are
     hoisted to batch boundaries ({!Governor.poll_batch} advances the poll
     counter by the whole batch, so deadline/cancellation/budget semantics
     stay record-equivalent).

   Scalar semantics are bit-compatible with {!Eval.eval_binop} /
   {!Monoid}: Int-vs-Float result types are preserved by typing every
   kernel statically (a column mixing Int and Float declines), comparisons
   use [Float.compare] (NaN totally ordered, as [Value.compare] does),
   integer division/modulo by zero raise the same {!Eval.Error}s, NULLs
   propagate through validity masks, and the sequential entry accumulates
   in row order so float folds associate exactly as the closure engine's.

   Anything outside the fragment — other monoids, non-scalar expressions,
   mixed-type or non-scalar columns, sources without a columnar view
   (cleaning policies skipping rows, external producers) — declines with a
   reason; {!Compile.query} records it as the ["vectorized->closure"] rung
   of the degradation ladder and runs the closure engine instead. *)

exception Not_vectorizable of string

let decline fmt = Format.kasprintf (fun s -> raise (Not_vectorizable s)) fmt

(* --- configuration ---------------------------------------------------- *)

let default_batch_rows = 4096

let env_batch_rows =
  match Sys.getenv_opt "VIDA_BATCH_ROWS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let batch_rows_ref = ref (Option.value env_batch_rows ~default:default_batch_rows)
let set_batch_rows n = batch_rows_ref := max 1 n
let batch_rows () = !batch_rows_ref

let enabled_ref =
  ref
    (match Sys.getenv_opt "VIDA_VECTOR" with
    | Some ("0" | "off" | "false") -> false
    | _ -> true)

let set_enabled b = enabled_ref := b
let enabled () = !enabled_ref

(* --- process-global statistics (server health) ------------------------ *)

type stats = {
  kernels : int;  (* queries (or morsel fleets) that compiled a kernel *)
  batches : int;
  rows : int;
  fallbacks : int;
  batch_rows_p50 : int;  (* over recent batches *)
  last_fallbacks : string list;  (* most recent reasons, newest first *)
}

let s_kernels = Atomic.make 0
let s_batches = Atomic.make 0
let s_rows = Atomic.make 0
let ring_cap = 256

(* ring entries are atomics: slots are claimed with a fetch-and-add on the
   cursor and written from every worker domain, so a plain array could
   serve the p50 torn or stale values under the memory model *)
let s_ring = Array.init ring_cap (fun _ -> Atomic.make 0)
let s_cursor = Atomic.make 0

(* the fallback counter and its reason ring move together under the lock:
   a health snapshot must never show reasons without matching counts *)
let reasons_lock = Vida_sync.Lock.create ~rank:70 ~name:"vector.reasons" ()
let s_fallbacks = ref 0
let s_reasons : string list ref = ref []

let note_batch rows =
  ignore (Atomic.fetch_and_add s_batches 1);
  ignore (Atomic.fetch_and_add s_rows rows);
  let slot = Atomic.fetch_and_add s_cursor 1 in
  Atomic.set s_ring.(slot mod ring_cap) rows

let note_global_fallback reason =
  Vida_sync.Lock.protect reasons_lock (fun () ->
      incr s_fallbacks;
      s_reasons :=
        reason :: (if List.length !s_reasons >= 8 then List.filteri (fun i _ -> i < 7) !s_reasons else !s_reasons))

let stats () =
  let filled = min (Atomic.get s_cursor) ring_cap in
  let p50 =
    if filled = 0 then 0
    else begin
      let xs = Array.init filled (fun i -> Atomic.get s_ring.(i)) in
      Array.sort compare xs;
      xs.(filled / 2)
    end
  in
  let fallbacks, last_fallbacks =
    Vida_sync.Lock.protect reasons_lock (fun () -> (!s_fallbacks, !s_reasons))
  in
  { kernels = Atomic.get s_kernels; batches = Atomic.get s_batches;
    rows = Atomic.get s_rows; fallbacks;
    batch_rows_p50 = p50;
    last_fallbacks }

let reset_stats () =
  Atomic.set s_kernels 0;
  Atomic.set s_batches 0;
  Atomic.set s_rows 0;
  Atomic.set s_cursor 0;
  Vida_sync.Lock.protect reasons_lock (fun () ->
      s_fallbacks := 0;
      s_reasons := [])

(* --- unboxed columns -------------------------------------------------- *)

type fcol = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t
type icol = (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t

(* A source column. Validity [None] means every row is non-NULL (the
   gather loops skip the mask copy). [ColRaw*] columns are batch-decoded
   straight from the binary-array file into per-instance staging buffers —
   no whole-column materialization at all. *)
type col =
  | ColF of fcol * Bytes.t option
  | ColI of icol * Bytes.t option
  | ColB of Bytes.t * Bytes.t option
  | ColRawF of Binarray.t * int
  | ColRawI of Binarray.t * int

type vty = TF | TI | TB

let col_ty = function
  | ColF _ | ColRawF _ -> TF
  | ColI _ | ColRawI _ -> TI
  | ColB _ -> TB

(* Promote a boxed (policy-cleaned, cache-resident) column to its unboxed
   form. The type is exact, never widened: a column mixing Int and Float
   declines, because Int-vs-Float result typing in {!Eval} is per-row and
   a widened column would change result types. *)
let promote ~field (arr : Value.t array) : col =
  let n = Array.length arr in
  let kind = ref `Unknown and nulls = ref false in
  (try
     for i = 0 to n - 1 do
       match Array.unsafe_get arr i with
       | Value.Null -> nulls := true
       | Value.Float _ -> (
         match !kind with `Unknown -> kind := `F | `F -> () | _ -> raise Exit)
       | Value.Int _ -> (
         match !kind with `Unknown -> kind := `I | `I -> () | _ -> raise Exit)
       | Value.Bool _ -> (
         match !kind with `Unknown -> kind := `B | `B -> () | _ -> raise Exit)
       | _ -> raise Exit
     done
   with Exit -> decline "column %s is not a uniform numeric/bool column" field);
  let validity () =
    if not !nulls then None
    else begin
      let v = Bytes.make n '\001' in
      for i = 0 to n - 1 do
        if arr.(i) = Value.Null then Bytes.unsafe_set v i '\000'
      done;
      Some v
    end
  in
  match !kind with
  | `Unknown -> decline "column %s has no typed values" field
  | `F ->
    let a = BA1.create Bigarray.float64 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      match Array.unsafe_get arr i with
      | Value.Float f -> BA1.unsafe_set a i f
      | _ -> BA1.unsafe_set a i 0.
    done;
    ColF (a, validity ())
  | `I ->
    let a = BA1.create Bigarray.int Bigarray.c_layout n in
    for i = 0 to n - 1 do
      match Array.unsafe_get arr i with
      | Value.Int x -> BA1.unsafe_set a i x
      | _ -> BA1.unsafe_set a i 0
    done;
    ColI (a, validity ())
  | `B ->
    let a = Bytes.make n '\000' in
    for i = 0 to n - 1 do
      match Array.unsafe_get arr i with
      | Value.Bool true -> Bytes.unsafe_set a i '\001'
      | _ -> ()
    done;
    ColB (a, validity ())

(* Promotion memo, keyed by physical identity of the boxed column: the
   plugins cache hands out the same immutable array until invalidation,
   and live-data extension replaces arrays wholesale, so [==] is exact.
   Bounded FIFO; a stale entry simply ages out. *)
let memo : (Value.t array * col) list ref = ref []
let memo_lock = Vida_sync.Lock.create ~rank:65 ~name:"vector.memo" ()
let memo_cap = 64

let promote_memo ~field arr =
  match
    Vida_sync.Lock.protect memo_lock (fun () ->
        List.find_opt (fun (a, _) -> a == arr) !memo)
  with
  | Some (_, c) -> c
  | None ->
    let c = promote ~field arr in
    Vida_sync.Lock.protect memo_lock (fun () ->
        let kept =
          if List.length !memo >= memo_cap then
            List.filteri (fun i _ -> i < memo_cap - 1) !memo
          else !memo
        in
        memo := (arr, c) :: kept);
    c

(* --- typed kernel IR -------------------------------------------------- *)

(* Every node carries its static result type; Int->Float coercions are
   explicit ([XItoF]), inserted where {!Eval.eval_binop}'s mixed-operand
   rules would convert. [XDivF]'s flag marks a statically-Int divisor:
   eval raises on [_ / Int 0] even when the dividend is Float, and the
   Int->Float conversion is exact at 0, so the check survives coercion. *)
type vx =
  | XConstF of float
  | XConstI of int
  | XConstB of bool
  | XColF of int
  | XColI of int
  | XColB of int
  | XBind of int * vty
  | XItoF of vx
  | XArithF of Expr.binop * vx * vx
  | XArithI of Expr.binop * vx * vx
  | XDivF of vx * vx * bool  (* divisor statically Int: zero still raises *)
  | XDivI of vx * vx
  | XModI of vx * vx
  | XCmpF of Expr.binop * vx * vx
  | XCmpI of Expr.binop * vx * vx
  | XAnd of vx * vx
  | XOr of vx * vx
  | XNot of vx
  | XNegF of vx
  | XNegI of vx

let vx_ty = function
  | XConstF _ | XColF _ | XItoF _ | XArithF _ | XDivF _ | XNegF _ -> TF
  | XConstI _ | XColI _ | XArithI _ | XDivI _ | XModI _ | XNegI _ -> TI
  | XConstB _ | XColB _ | XCmpF _ | XCmpI _ | XAnd _ | XOr _ | XNot _ -> TB
  | XBind (_, ty) -> ty

(* Compile one scalar expression to the typed IR. [cols] maps source
   fields (projections off the chain variable) to column slots, [binds]
   maps Map-introduced variables to bind slots, parameters fold to
   constants. Everything else declines with the offending construct. *)
type cenv = {
  src_var : string;
  cols : (string * int) list;
  col_tys : vty array;
  binds : (string * int) list;
  bind_tys : vty array;
  params : (string * Value.t) list;
}

let rec cx env (e : Expr.t) : vx =
  match e with
  | Expr.Const (Value.Int i) -> XConstI i
  | Expr.Const (Value.Float f) -> XConstF f
  | Expr.Const (Value.Bool b) -> XConstB b
  | Expr.Const v -> decline "non-scalar constant %s" (Value.to_string v)
  | Expr.Proj (Expr.Var v, f) when String.equal v env.src_var -> (
    match List.assoc_opt f env.cols with
    | None -> decline "field %s has no promoted column" f
    | Some slot -> (
      match env.col_tys.(slot) with
      | TF -> XColF slot
      | TI -> XColI slot
      | TB -> XColB slot))
  | Expr.Var x -> (
    match List.assoc_opt x env.binds with
    | Some slot -> XBind (slot, env.bind_tys.(slot))
    | None -> (
      if String.equal x env.src_var then decline "whole-row reference %s" x
      else
        match List.assoc_opt x env.params with
        | Some (Value.Int i) -> XConstI i
        | Some (Value.Float f) -> XConstF f
        | Some (Value.Bool b) -> XConstB b
        | Some v -> decline "non-scalar parameter %s = %s" x (Value.to_string v)
        | None -> decline "free variable %s" x))
  | Expr.UnOp (Expr.Not, a) -> (
    let xa = cx env a in
    match vx_ty xa with
    | TB -> XNot xa
    | _ -> decline "'not' on non-boolean kernel operand")
  | Expr.UnOp (Expr.Neg, a) -> (
    let xa = cx env a in
    match vx_ty xa with
    | TF -> XNegF xa
    | TI -> XNegI xa
    | TB -> decline "negation of boolean kernel operand")
  | Expr.BinOp (op, a, b) -> (
    let xa = cx env a and xb = cx env b in
    let ta = vx_ty xa and tb = vx_ty xb in
    let as_f x = if vx_ty x = TI then XItoF x else x in
    match op with
    | Expr.Add | Expr.Sub | Expr.Mul -> (
      match ta, tb with
      | TI, TI -> XArithI (op, xa, xb)
      | (TI | TF), (TI | TF) -> XArithF (op, as_f xa, as_f xb)
      | _ -> decline "arithmetic on boolean kernel operand")
    | Expr.Div -> (
      match ta, tb with
      | TI, TI -> XDivI (xa, xb)
      | (TI | TF), (TI | TF) -> XDivF (as_f xa, as_f xb, tb = TI)
      | _ -> decline "division on boolean kernel operand")
    | Expr.Mod -> (
      match ta, tb with
      | TI, TI -> XModI (xa, xb)
      | _ -> decline "modulo on non-integer kernel operands")
    | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> (
      match ta, tb with
      | TI, TI -> XCmpI (op, xa, xb)
      | (TI | TF), (TI | TF) -> XCmpF (op, as_f xa, as_f xb)
      | _ -> decline "comparison on boolean kernel operands")
    | Expr.And -> (
      match ta, tb with
      | TB, TB -> XAnd (xa, xb)
      | _ -> decline "'and' on non-boolean kernel operands")
    | Expr.Or -> (
      match ta, tb with
      | TB, TB -> XOr (xa, xb)
      | _ -> decline "'or' on non-boolean kernel operands")
    | Expr.Concat -> decline "string concatenation")
  | Expr.Proj _ -> decline "projection off a non-source value"
  | Expr.If _ -> decline "conditional"
  | Expr.Record _ -> decline "record construction"
  | Expr.Lambda _ | Expr.Apply _ -> decline "function value"
  | Expr.Zero _ | Expr.Singleton _ | Expr.Merge _ | Expr.Comp _ ->
    decline "nested monoid expression"
  | Expr.Index _ -> decline "array indexing"

(* Structural (type-independent) support check, used by {!classify} so
   statically hopeless plans are declined before any column is fetched. *)
let rec structurally_supported ~src_var (e : Expr.t) : (unit, string) result =
  let sub a b =
    match structurally_supported ~src_var a with
    | Error _ as err -> err
    | Ok () -> structurally_supported ~src_var b
  in
  match e with
  | Expr.Const (Value.Int _ | Value.Float _ | Value.Bool _) -> Ok ()
  | Expr.Const v -> Error ("non-scalar constant " ^ Value.to_string v)
  | Expr.Proj (Expr.Var v, _) when String.equal v src_var -> Ok ()
  | Expr.Var x when String.equal x src_var -> Error ("whole-row reference " ^ x)
  | Expr.Var _ -> Ok () (* bind var or parameter; typing decides at run *)
  | Expr.UnOp (_, a) -> structurally_supported ~src_var a
  | Expr.BinOp (Expr.Concat, _, _) -> Error "string concatenation"
  | Expr.BinOp (_, a, b) -> sub a b
  | Expr.Proj _ -> Error "projection off a non-source value"
  | Expr.If _ -> Error "conditional"
  | Expr.Record _ -> Error "record construction"
  | Expr.Lambda _ | Expr.Apply _ -> Error "function value"
  | Expr.Zero _ | Expr.Singleton _ | Expr.Merge _ | Expr.Comp _ ->
    Error "nested monoid expression"
  | Expr.Index _ -> Error "array indexing"

(* Fields of the source the kernels touch: projections off the chain var. *)
let rec proj_fields ~src_var acc (e : Expr.t) =
  match e with
  | Expr.Proj (Expr.Var v, f) when String.equal v src_var ->
    if List.mem f acc then acc else f :: acc
  | Expr.Const _ | Expr.Var _ -> acc
  | Expr.UnOp (_, a) -> proj_fields ~src_var acc a
  | Expr.BinOp (_, a, b) -> proj_fields ~src_var (proj_fields ~src_var acc a) b
  | Expr.Proj (a, _) -> proj_fields ~src_var acc a
  | Expr.If (a, b, c) ->
    proj_fields ~src_var (proj_fields ~src_var (proj_fields ~src_var acc a) b) c
  | Expr.Record fs ->
    List.fold_left (fun acc (_, e) -> proj_fields ~src_var acc e) acc fs
  | Expr.Lambda (_, a) -> proj_fields ~src_var acc a
  | Expr.Apply (a, b) | Expr.Merge (_, a, b) ->
    proj_fields ~src_var (proj_fields ~src_var acc a) b
  | Expr.Zero _ -> acc
  | Expr.Singleton (_, a) -> proj_fields ~src_var acc a
  | Expr.Comp _ -> acc
  | Expr.Index (a, idxs) ->
    List.fold_left (proj_fields ~src_var) (proj_fields ~src_var acc a) idxs

(* --- plan classification ---------------------------------------------- *)

type vstep = VFilter of Expr.t | VBind of string * Expr.t

type candidate = {
  source : Source.t;
  name : string;
  var : string;
  steps : vstep list;  (* execution order *)
  monoid : Monoid.t;
  head : Expr.t;
  fields : string list;
}

let monoid_supported = function
  | Monoid.Prim
      ( Monoid.Sum | Monoid.Prod | Monoid.Count | Monoid.Avg | Monoid.Max
      | Monoid.Min | Monoid.All | Monoid.Some_ ) ->
    Ok ()
  | m -> Error ("monoid " ^ Monoid.name m ^ " has no fused kernel")

let rec decompose (p : Plan.t) steps =
  match p with
  | Plan.Select { pred; child } -> decompose child (VFilter pred :: steps)
  | Plan.Map { var; expr; child } -> decompose child (VBind (var, expr) :: steps)
  | Plan.Source { var; expr = Expr.Var name } -> Some (var, name, steps)
  | _ -> None

(* [`Silent] = the plan shape was never a vectorization candidate (joins,
   bare chains, subplans…): the closure engine is the designed path, no
   fallback is recorded. [`Decline] = the shape matched but a detail rules
   the kernels out: recorded as the vectorized->closure rung. *)
let classify ctx (p : Plan.t) :
    [ `Candidate of candidate | `Decline of string | `Silent ] =
  if not (enabled ()) then `Silent
  else
    match p with
    | Plan.Reduce { monoid; head; child } -> (
      match decompose child [] with
      | None -> `Silent
      | Some (var, name, steps) -> (
        match Registry.find ctx.Plugins.registry name with
        | None -> `Silent
        | Some source -> (
          match source.Source.format with
          | Source.External _ -> `Silent
          | _ -> (
            (* [count v] over the generator variable counts one per row —
               generator bindings are records, never NULL, so the head
               folds to an always-valid constant (the closure engine's
               unit is Int 1 for records, equivalently). *)
            let head =
              match monoid, head with
              | Monoid.Prim Monoid.Count, Expr.Var v when String.equal v var ->
                Expr.Const (Value.Int 0)
              | _ -> head
            in
            match monoid_supported monoid with
            | Error reason -> `Decline reason
            | Ok () -> (
              let check e = structurally_supported ~src_var:var e in
              let step_err =
                List.find_map
                  (fun s ->
                    match s with
                    | VFilter p -> (
                      match check p with Ok () -> None | Error r -> Some r)
                    | VBind (_, e) -> (
                      match check e with Ok () -> None | Error r -> Some r))
                  steps
              in
              match step_err with
              | Some reason -> `Decline reason
              | None -> (
                match check head with
                | Error reason -> `Decline reason
                | Ok () ->
                  let fields =
                    List.fold_left
                      (fun acc s ->
                        match s with
                        | VFilter p -> proj_fields ~src_var:var acc p
                        | VBind (_, e) -> proj_fields ~src_var:var acc e)
                      (proj_fields ~src_var:var [] head)
                      steps
                    |> List.rev
                  in
                  `Candidate { source; name; var; steps; monoid; head; fields }))))))
    | _ -> `Silent

(* --- compiled kernels -------------------------------------------------- *)

type feedback_tap = {
  tap_pred : Expr.t;
  seen : int Atomic.t;
  passed : int Atomic.t;
}

type kstep = KFilter of vx * feedback_tap | KBind of int * vx

type kernel = {
  k_name : string;  (* registry name, for epoch ticks & poll source *)
  k_cols : col array;
  k_nrows : int;
  k_steps : kstep list;
  k_nbinds : int;
  k_head : vx;
  k_monoid : Monoid.t;
  k_taps : feedback_tap list;
  k_prune : (Binarray.t * Binarray.range list) option;
      (* zone-map batch pruning for direct binary-array scans *)
}

(* Build a kernel for an already-resolved chain: typed columns, typed
   steps, typed head, reduce kind validated against the head type. *)
let build_kernel ?prune ~name ~var ~(cols : (string * col) array) ~nrows ~steps
    ~monoid ~head () : kernel =
  let col_tys = Array.map (fun (_, c) -> col_ty c) cols in
  let col_slots = Array.to_list (Array.mapi (fun i (f, _) -> (f, i)) cols) in
  let bind_names =
    List.filter_map (function VBind (v, _) -> Some v | VFilter _ -> None) steps
  in
  let nbinds = List.length bind_names in
  let bind_slots = List.mapi (fun i v -> (v, i)) bind_names in
  let bind_tys = Array.make (max nbinds 1) TF in
  (* binds are typed in step order; a bind may reference earlier binds *)
  let env =
    { src_var = var; cols = col_slots; col_tys; binds = []; bind_tys;
      params = [] }
  in
  let taps = ref [] in
  let _, ksteps =
    List.fold_left
      (fun (env, acc) s ->
        match s with
        | VFilter p ->
          let x = cx env p in
          if vx_ty x <> TB then decline "filter is not boolean-typed";
          let tap =
            { tap_pred = p; seen = Atomic.make 0; passed = Atomic.make 0 }
          in
          taps := tap :: !taps;
          (env, KFilter (x, tap) :: acc)
        | VBind (v, e) ->
          let x = cx env e in
          let slot = List.assoc v bind_slots in
          bind_tys.(slot) <- vx_ty x;
          ({ env with binds = (v, slot) :: env.binds }, KBind (slot, x) :: acc))
      (env, []) steps
  in
  let env =
    { env with binds = bind_slots }
  in
  let head_x = cx env head in
  (match monoid, vx_ty head_x with
  | Monoid.Prim (Monoid.Sum | Monoid.Prod | Monoid.Avg | Monoid.Max | Monoid.Min), TB
    ->
    decline "numeric monoid over a boolean head"
  | Monoid.Prim (Monoid.All | Monoid.Some_), (TF | TI) ->
    decline "boolean monoid over a numeric head"
  | _ -> ());
  ignore (Atomic.fetch_and_add s_kernels 1);
  { k_name = name; k_cols = Array.map snd cols; k_nrows = nrows;
    k_steps = List.rev ksteps; k_nbinds = nbinds; k_head = head_x;
    k_monoid = monoid; k_taps = !taps; k_prune = prune }

(* --- instances: per-domain scratch + the batch loop -------------------- *)

type vval = VF of float array * Bytes.t | VI of int array * Bytes.t | VB of Bytes.t * Bytes.t

let dummy_vval = VB (Bytes.create 0, Bytes.create 0)

type state = {
  bcap : int;
  sel : int array;
  mutable n : int;  (* live rows in [sel] *)
  mutable batch_lo : int;
  ones : Bytes.t;
  cols : col array;
  stage_f : fcol array;  (* per raw column, else 0-length *)
  stage_i : icol array;
  binds : vval array;
  mutable assigned : int;  (* bind slots filled so far this batch *)
}

let as_f = function VF (a, v) -> (a, v) | _ -> assert false
let as_i = function VI (a, v) -> (a, v) | _ -> assert false
let as_b = function VB (a, v) -> (a, v) | _ -> assert false

let valid c = c = '\001'

(* Build the evaluator closure tree for one instance. Every operator node
   owns its output buffers and writes nothing else; leaves return borrowed
   buffers (columns gather into their own scratch, binds and constants are
   returned as-is). Values under an invalid mask are garbage by design —
   only division/modulo guard on validity, everything else computes
   through and lets the mask win. *)
let rec build st (x : vx) : unit -> vval =
  let fbuf () = Array.make st.bcap 0.
  and ibuf () = Array.make st.bcap 0
  and bbuf () = Bytes.make st.bcap '\000' in
  match x with
  | XConstF c ->
    let a = fbuf () in
    Array.fill a 0 st.bcap c;
    let r = VF (a, st.ones) in
    fun () -> r
  | XConstI c ->
    let a = ibuf () in
    Array.fill a 0 st.bcap c;
    let r = VI (a, st.ones) in
    fun () -> r
  | XConstB c ->
    let a = bbuf () in
    Bytes.fill a 0 st.bcap (if c then '\001' else '\000');
    let r = VB (a, st.ones) in
    fun () -> r
  | XBind (slot, _) -> fun () -> st.binds.(slot)
  | XColF ci -> (
    let out = fbuf () in
    match st.cols.(ci) with
    | ColF (src, None) ->
      fun () ->
        for k = 0 to st.n - 1 do
          Array.unsafe_set out k (BA1.unsafe_get src (Array.unsafe_get st.sel k))
        done;
        VF (out, st.ones)
    | ColF (src, Some sv) ->
      let vd = bbuf () in
      fun () ->
        for k = 0 to st.n - 1 do
          let r = Array.unsafe_get st.sel k in
          Array.unsafe_set out k (BA1.unsafe_get src r);
          Bytes.unsafe_set vd k (Bytes.unsafe_get sv r)
        done;
        VF (out, vd)
    | ColRawF _ ->
      let stage = st.stage_f.(ci) in
      fun () ->
        let lo = st.batch_lo in
        for k = 0 to st.n - 1 do
          Array.unsafe_set out k (BA1.unsafe_get stage (Array.unsafe_get st.sel k - lo))
        done;
        VF (out, st.ones)
    | _ -> assert false)
  | XColI ci -> (
    let out = ibuf () in
    match st.cols.(ci) with
    | ColI (src, None) ->
      fun () ->
        for k = 0 to st.n - 1 do
          Array.unsafe_set out k (BA1.unsafe_get src (Array.unsafe_get st.sel k))
        done;
        VI (out, st.ones)
    | ColI (src, Some sv) ->
      let vd = bbuf () in
      fun () ->
        for k = 0 to st.n - 1 do
          let r = Array.unsafe_get st.sel k in
          Array.unsafe_set out k (BA1.unsafe_get src r);
          Bytes.unsafe_set vd k (Bytes.unsafe_get sv r)
        done;
        VI (out, vd)
    | ColRawI _ ->
      let stage = st.stage_i.(ci) in
      fun () ->
        let lo = st.batch_lo in
        for k = 0 to st.n - 1 do
          Array.unsafe_set out k (BA1.unsafe_get stage (Array.unsafe_get st.sel k - lo))
        done;
        VI (out, st.ones)
    | _ -> assert false)
  | XColB ci -> (
    let out = bbuf () in
    match st.cols.(ci) with
    | ColB (src, None) ->
      fun () ->
        for k = 0 to st.n - 1 do
          Bytes.unsafe_set out k (Bytes.unsafe_get src (Array.unsafe_get st.sel k))
        done;
        VB (out, st.ones)
    | ColB (src, Some sv) ->
      let vd = bbuf () in
      fun () ->
        for k = 0 to st.n - 1 do
          let r = Array.unsafe_get st.sel k in
          Bytes.unsafe_set out k (Bytes.unsafe_get src r);
          Bytes.unsafe_set vd k (Bytes.unsafe_get sv r)
        done;
        VB (out, vd)
    | _ -> assert false)
  | XItoF a ->
    let ea = build st a in
    let out = fbuf () in
    fun () ->
      let xa, va = as_i (ea ()) in
      for k = 0 to st.n - 1 do
        Array.unsafe_set out k (float_of_int (Array.unsafe_get xa k))
      done;
      VF (out, va)
  | XArithF (op, a, b) ->
    let ea = build st a and eb = build st b in
    let out = fbuf () and vd = bbuf () in
    let f =
      match op with
      | Expr.Add -> ( +. )
      | Expr.Sub -> ( -. )
      | Expr.Mul -> ( *. )
      | _ -> assert false
    in
    fun () ->
      let xa, va = as_f (ea ()) in
      let xb, vb = as_f (eb ()) in
      for k = 0 to st.n - 1 do
        Array.unsafe_set out k (f (Array.unsafe_get xa k) (Array.unsafe_get xb k));
        Bytes.unsafe_set vd k
          (if valid (Bytes.unsafe_get va k) && valid (Bytes.unsafe_get vb k)
           then '\001' else '\000')
      done;
      VF (out, vd)
  | XArithI (op, a, b) ->
    let ea = build st a and eb = build st b in
    let out = ibuf () and vd = bbuf () in
    let f =
      match op with
      | Expr.Add -> ( + )
      | Expr.Sub -> ( - )
      | Expr.Mul -> ( * )
      | _ -> assert false
    in
    fun () ->
      let xa, va = as_i (ea ()) in
      let xb, vb = as_i (eb ()) in
      for k = 0 to st.n - 1 do
        Array.unsafe_set out k (f (Array.unsafe_get xa k) (Array.unsafe_get xb k));
        Bytes.unsafe_set vd k
          (if valid (Bytes.unsafe_get va k) && valid (Bytes.unsafe_get vb k)
           then '\001' else '\000')
      done;
      VI (out, vd)
  | XDivI (a, b) ->
    let ea = build st a and eb = build st b in
    let out = ibuf () and vd = bbuf () in
    fun () ->
      let xa, va = as_i (ea ()) in
      let xb, vb = as_i (eb ()) in
      for k = 0 to st.n - 1 do
        if valid (Bytes.unsafe_get va k) && valid (Bytes.unsafe_get vb k) then begin
          let y = Array.unsafe_get xb k in
          if y = 0 then raise (Eval.Error "integer division by zero");
          Array.unsafe_set out k (Array.unsafe_get xa k / y);
          Bytes.unsafe_set vd k '\001'
        end
        else Bytes.unsafe_set vd k '\000'
      done;
      VI (out, vd)
  | XDivF (a, b, check_int_zero) ->
    let ea = build st a and eb = build st b in
    let out = fbuf () and vd = bbuf () in
    fun () ->
      let xa, va = as_f (ea ()) in
      let xb, vb = as_f (eb ()) in
      for k = 0 to st.n - 1 do
        if valid (Bytes.unsafe_get va k) && valid (Bytes.unsafe_get vb k) then begin
          let y = Array.unsafe_get xb k in
          if check_int_zero && y = 0. then
            raise (Eval.Error "integer division by zero");
          Array.unsafe_set out k (Array.unsafe_get xa k /. y);
          Bytes.unsafe_set vd k '\001'
        end
        else Bytes.unsafe_set vd k '\000'
      done;
      VF (out, vd)
  | XModI (a, b) ->
    let ea = build st a and eb = build st b in
    let out = ibuf () and vd = bbuf () in
    fun () ->
      let xa, va = as_i (ea ()) in
      let xb, vb = as_i (eb ()) in
      for k = 0 to st.n - 1 do
        if valid (Bytes.unsafe_get va k) && valid (Bytes.unsafe_get vb k) then begin
          let y = Array.unsafe_get xb k in
          if y = 0 then raise (Eval.Error "modulo by zero");
          Array.unsafe_set out k (Array.unsafe_get xa k mod y);
          Bytes.unsafe_set vd k '\001'
        end
        else Bytes.unsafe_set vd k '\000'
      done;
      VI (out, vd)
  | XCmpF (op, a, b) ->
    let ea = build st a and eb = build st b in
    let out = bbuf () and vd = bbuf () in
    let test =
      match op with
      | Expr.Eq -> fun c -> c = 0
      | Expr.Neq -> fun c -> c <> 0
      | Expr.Lt -> fun c -> c < 0
      | Expr.Le -> fun c -> c <= 0
      | Expr.Gt -> fun c -> c > 0
      | Expr.Ge -> fun c -> c >= 0
      | _ -> assert false
    in
    fun () ->
      let xa, va = as_f (ea ()) in
      let xb, vb = as_f (eb ()) in
      for k = 0 to st.n - 1 do
        (* Float.compare, not IEEE: NaN totally ordered, as Value.compare *)
        Bytes.unsafe_set out k
          (if test (Float.compare (Array.unsafe_get xa k) (Array.unsafe_get xb k))
           then '\001' else '\000');
        Bytes.unsafe_set vd k
          (if valid (Bytes.unsafe_get va k) && valid (Bytes.unsafe_get vb k)
           then '\001' else '\000')
      done;
      VB (out, vd)
  | XCmpI (op, a, b) ->
    let ea = build st a and eb = build st b in
    let out = bbuf () and vd = bbuf () in
    let test =
      match op with
      | Expr.Eq -> fun c -> c = 0
      | Expr.Neq -> fun c -> c <> 0
      | Expr.Lt -> fun c -> c < 0
      | Expr.Le -> fun c -> c <= 0
      | Expr.Gt -> fun c -> c > 0
      | Expr.Ge -> fun c -> c >= 0
      | _ -> assert false
    in
    fun () ->
      let xa, va = as_i (ea ()) in
      let xb, vb = as_i (eb ()) in
      for k = 0 to st.n - 1 do
        Bytes.unsafe_set out k
          (if test (Int.compare (Array.unsafe_get xa k) (Array.unsafe_get xb k))
           then '\001' else '\000');
        Bytes.unsafe_set vd k
          (if valid (Bytes.unsafe_get va k) && valid (Bytes.unsafe_get vb k)
           then '\001' else '\000')
      done;
      VB (out, vd)
  | XAnd (a, b) ->
    let ea = build st a and eb = build st b in
    let out = bbuf () and vd = bbuf () in
    fun () ->
      let xa, va = as_b (ea ()) in
      let xb, vb = as_b (eb ()) in
      for k = 0 to st.n - 1 do
        let av = valid (Bytes.unsafe_get va k)
        and bv = valid (Bytes.unsafe_get vb k) in
        let at = valid (Bytes.unsafe_get xa k)
        and bt = valid (Bytes.unsafe_get xb k) in
        (* three-valued: false ∧ x = false, true ∧ null = null *)
        if (av && not at) || (bv && not bt) then begin
          Bytes.unsafe_set out k '\000';
          Bytes.unsafe_set vd k '\001'
        end
        else if av && bv then begin
          Bytes.unsafe_set out k '\001';
          Bytes.unsafe_set vd k '\001'
        end
        else Bytes.unsafe_set vd k '\000'
      done;
      VB (out, vd)
  | XOr (a, b) ->
    let ea = build st a and eb = build st b in
    let out = bbuf () and vd = bbuf () in
    fun () ->
      let xa, va = as_b (ea ()) in
      let xb, vb = as_b (eb ()) in
      for k = 0 to st.n - 1 do
        let av = valid (Bytes.unsafe_get va k)
        and bv = valid (Bytes.unsafe_get vb k) in
        let at = valid (Bytes.unsafe_get xa k)
        and bt = valid (Bytes.unsafe_get xb k) in
        if (av && at) || (bv && bt) then begin
          Bytes.unsafe_set out k '\001';
          Bytes.unsafe_set vd k '\001'
        end
        else if av && bv then begin
          Bytes.unsafe_set out k '\000';
          Bytes.unsafe_set vd k '\001'
        end
        else Bytes.unsafe_set vd k '\000'
      done;
      VB (out, vd)
  | XNot a ->
    let ea = build st a in
    let out = bbuf () in
    fun () ->
      let xa, va = as_b (ea ()) in
      for k = 0 to st.n - 1 do
        Bytes.unsafe_set out k
          (if valid (Bytes.unsafe_get xa k) then '\000' else '\001')
      done;
      VB (out, va)
  | XNegF a ->
    let ea = build st a in
    let out = fbuf () in
    fun () ->
      let xa, va = as_f (ea ()) in
      for k = 0 to st.n - 1 do
        Array.unsafe_set out k (-.Array.unsafe_get xa k)
      done;
      VF (out, va)
  | XNegI a ->
    let ea = build st a in
    let out = ibuf () in
    fun () ->
      let xa, va = as_i (ea ()) in
      for k = 0 to st.n - 1 do
        Array.unsafe_set out k (-Array.unsafe_get xa k)
      done;
      VI (out, va)

(* compact one dense bind buffer in place with the same permutation the
   selection vector just underwent (dst <= src, so in-place is safe) *)
let compact_vval v ~src ~dst =
  match v with
  | VF (a, vd) ->
    Array.unsafe_set a dst (Array.unsafe_get a src);
    Bytes.unsafe_set vd dst (Bytes.unsafe_get vd src)
  | VI (a, vd) ->
    Array.unsafe_set a dst (Array.unsafe_get a src);
    Bytes.unsafe_set vd dst (Bytes.unsafe_get vd src)
  | VB (a, vd) ->
    Bytes.unsafe_set a dst (Bytes.unsafe_get a src);
    Bytes.unsafe_set vd dst (Bytes.unsafe_get vd src)

(* Fused reduce accumulators: scalar mutable state folding exactly as
   [Monoid.merge (unit …)] does row by row — same start values, same
   NULL skipping, same Value.compare tie-breaks, same float association
   (row order within a range). The returned value is the pre-finalize
   accumulator, so morsel partials merge with [Monoid.merge] unchanged. *)
type accum = { push : vval -> int -> unit; result : unit -> Value.t }

let make_accum (monoid : Monoid.t) (head_ty : vty) : accum =
  let af = ref 0. and ai = ref 0 and count = ref 0 and any = ref false in
  let ab = ref true in
  let over_valid f =
    fun v n ->
      match v, head_ty with
      | VF (a, vd), _ ->
        for k = 0 to n - 1 do
          if valid (Bytes.unsafe_get vd k) then f (Array.unsafe_get a k) 0 false
        done
      | VI (a, vd), _ ->
        for k = 0 to n - 1 do
          if valid (Bytes.unsafe_get vd k) then f 0. (Array.unsafe_get a k) false
        done
      | VB (a, vd), _ ->
        for k = 0 to n - 1 do
          if valid (Bytes.unsafe_get vd k) then
            f 0. 0 (valid (Bytes.unsafe_get a k))
        done
  in
  match monoid, head_ty with
  | Monoid.Prim Monoid.Count, _ ->
    { push = over_valid (fun _ _ _ -> incr count);
      result = (fun () -> Value.Int !count) }
  | Monoid.Prim Monoid.Sum, TI ->
    { push = over_valid (fun _ x _ -> ai := !ai + x);
      result = (fun () -> Value.Int !ai) }
  | Monoid.Prim Monoid.Sum, TF ->
    { push = over_valid (fun x _ _ -> af := !af +. x; any := true);
      result = (fun () -> if !any then Value.Float !af else Value.Int 0) }
  | Monoid.Prim Monoid.Prod, TI ->
    ai := 1;
    { push = over_valid (fun _ x _ -> ai := !ai * x);
      result = (fun () -> Value.Int !ai) }
  | Monoid.Prim Monoid.Prod, TF ->
    af := 1.;
    { push = over_valid (fun x _ _ -> af := !af *. x; any := true);
      result = (fun () -> if !any then Value.Float !af else Value.Int 1) }
  | Monoid.Prim Monoid.Avg, (TI | TF) ->
    let push =
      match head_ty with
      | TI -> over_valid (fun _ x _ -> af := !af +. float_of_int x; incr count)
      | _ -> over_valid (fun x _ _ -> af := !af +. x; incr count)
    in
    { push;
      result =
        (fun () ->
          Value.Record [ ("sum", Value.Float !af); ("count", Value.Int !count) ])
    }
  | Monoid.Prim Monoid.Max, TI ->
    { push =
        over_valid (fun _ x _ ->
            if not !any then (ai := x; any := true)
            else if Int.compare !ai x < 0 then ai := x);
      result = (fun () -> if !any then Value.Int !ai else Value.Null) }
  | Monoid.Prim Monoid.Max, TF ->
    { push =
        over_valid (fun x _ _ ->
            if not !any then (af := x; any := true)
            else if Float.compare !af x < 0 then af := x);
      result = (fun () -> if !any then Value.Float !af else Value.Null) }
  | Monoid.Prim Monoid.Min, TI ->
    { push =
        over_valid (fun _ x _ ->
            if not !any then (ai := x; any := true)
            else if Int.compare !ai x > 0 then ai := x);
      result = (fun () -> if !any then Value.Int !ai else Value.Null) }
  | Monoid.Prim Monoid.Min, TF ->
    { push =
        over_valid (fun x _ _ ->
            if not !any then (af := x; any := true)
            else if Float.compare !af x > 0 then af := x);
      result = (fun () -> if !any then Value.Float !af else Value.Null) }
  | Monoid.Prim Monoid.All, TB ->
    { push = over_valid (fun _ _ b -> ab := !ab && b);
      result = (fun () -> Value.Bool !ab) }
  | Monoid.Prim Monoid.Some_, TB ->
    ab := false;
    { push = over_valid (fun _ _ b -> ab := !ab || b);
      result = (fun () -> Value.Bool !ab) }
  | _ -> decline "monoid %s has no fused kernel for this head" (Monoid.name monoid)

type instance = {
  i_k : kernel;
  i_st : state;
  i_steps : (unit -> unit) list;  (* per-batch step runners *)
  i_head : unit -> vval;
  i_accum : accum;
  i_domain : int;  (* instantiating domain, for the P09 scratch check *)
}

let instantiate (k : kernel) : instance =
  let bcap = batch_rows () in
  let ncols = Array.length k.k_cols in
  let empty_f = BA1.create Bigarray.float64 Bigarray.c_layout 0 in
  let empty_i = BA1.create Bigarray.int Bigarray.c_layout 0 in
  let st =
    { bcap; sel = Array.make bcap 0; n = 0; batch_lo = 0;
      ones = Bytes.make bcap '\001'; cols = k.k_cols;
      stage_f =
        Array.init ncols (fun i ->
            match k.k_cols.(i) with
            | ColRawF _ -> BA1.create Bigarray.float64 Bigarray.c_layout bcap
            | _ -> empty_f);
      stage_i =
        Array.init ncols (fun i ->
            match k.k_cols.(i) with
            | ColRawI _ -> BA1.create Bigarray.int Bigarray.c_layout bcap
            | _ -> empty_i);
      binds = Array.make (max k.k_nbinds 1) dummy_vval; assigned = 0 }
  in
  let steps =
    List.map
      (function
        | KBind (slot, x) ->
          let e = build st x in
          fun () ->
            st.binds.(slot) <- e ();
            st.assigned <- st.assigned + 1
        | KFilter (x, tap) ->
          let e = build st x in
          fun () ->
            let bb, vd = as_b (e ()) in
            let n = st.n in
            ignore (Atomic.fetch_and_add tap.seen n);
            let m = ref 0 in
            for src = 0 to n - 1 do
              if valid (Bytes.unsafe_get vd src) && valid (Bytes.unsafe_get bb src)
              then begin
                let dst = !m in
                Array.unsafe_set st.sel dst (Array.unsafe_get st.sel src);
                for b = 0 to st.assigned - 1 do
                  compact_vval st.binds.(b) ~src ~dst
                done;
                incr m
              end
            done;
            st.n <- !m;
            ignore (Atomic.fetch_and_add tap.passed !m))
      k.k_steps
  in
  let head = build st k.k_head in
  let accum = make_accum k.k_monoid (vx_ty k.k_head) in
  (* no budget charge: the scratch is O(batch_rows), a per-query constant
     independent of the data — budgets track data-dependent materialized
     working sets, and the closure engine's scans charge nothing either *)
  { i_k = k; i_st = st; i_steps = steps; i_head = head; i_accum = accum;
    i_domain = (Domain.self () :> int) }

(* Run the fused kernel over rows [lo, hi): the per-morsel (or whole-scan)
   batch loop. One governor poll, one epoch tick and one stats note per
   batch; returns the pre-finalize accumulator value. *)
let run_range (inst : instance) ~lo ~hi : Value.t =
  let st = inst.i_st in
  let source = inst.i_k.k_name in
  let sanitize = Vida_sync.enabled () in
  (* P09: the instance's scratch (selection vector, staging buffers, bind
     slots) is single-morsel state — running it from a domain other than
     the one that instantiated it means the scratch escaped its morsel *)
  if sanitize then begin
    Vida_sync.note_kernel_check ();
    match
      Vida_analysis.Kernel.check_scratch_domain ~created_on:inst.i_domain
        ~running_on:(Domain.self () :> int)
    with
    | Some reason -> Vida_sync.kernel_failed ~id:"P09" ~subject:source "%s" reason
    | None -> ()
  end;
  let process rlo rhi =
  let pos = ref rlo in
  while !pos < rhi do
    let blo = !pos in
    let bhi = min rhi (blo + st.bcap) in
    let rows = bhi - blo in
    Governor.poll_batch ~source:"vector" ~rows ();
    Epoch.check ~source ();
    note_batch rows;
    st.batch_lo <- blo;
    Array.iteri
      (fun ci c ->
        match c with
        | ColRawF (ba, field) ->
          Binarray.fill_floats ba ~field ~lo:blo ~hi:bhi st.stage_f.(ci)
        | ColRawI (ba, field) ->
          Binarray.fill_ints ba ~field ~lo:blo ~hi:bhi st.stage_i.(ci)
        | _ -> ())
      st.cols;
    for k = 0 to rows - 1 do
      Array.unsafe_set st.sel k (blo + k)
    done;
    st.n <- rows;
    st.assigned <- 0;
    List.iter (fun step -> step ()) inst.i_steps;
    (* P08: filters only ever compact the selection vector in place, so
       after the steps it must still be strictly increasing and inside
       this batch's bounds — anything else means a kernel wrote rows it
       was never selected to touch *)
    if sanitize then begin
      Vida_sync.note_kernel_check ();
      match Vida_analysis.Kernel.check_selection st.sel ~n:st.n ~lo:blo ~hi:bhi with
      | Some reason -> Vida_sync.kernel_failed ~id:"P08" ~subject:source "%s" reason
      | None -> ()
    end;
    if st.n > 0 then inst.i_accum.push (inst.i_head ()) st.n;
    pos := bhi
  done
  in
  (match inst.i_k.k_prune with
  | Some (ba, ranges) -> Binarray.matching_runs ba ~ranges ~lo ~hi process
  | None -> process lo hi);
  inst.i_accum.result ()

let flush_feedback ctx (k : kernel) =
  List.iter
    (fun tap ->
      let seen = Atomic.exchange tap.seen 0 in
      let passed = Atomic.exchange tap.passed 0 in
      (* same 16-observation gate as the closure engine's instrumentation *)
      if seen >= 16 then
        Feedback.record ctx.Plugins.feedback
          ~key:(Feedback.selectivity_key tap.tap_pred)
          ~observed:(float_of_int passed /. float_of_int seen))
    k.k_taps

(* --- chain entry (parallel morsels) ----------------------------------- *)

(* Compile a kernel for a chain the parallel engine already resolved
   (columns fetched, effects vetted). The kernel is immutable and shared;
   each worker domain instantiates its own scratch. *)
let compile_chain ctx ~name ~var ~(columns : (string * Value.t array) array)
    ~nrows ~steps ~monoid ~head : (kernel, string) result =
  ignore ctx;
  if not (enabled ()) then Error "vectorized engine disabled"
  else
    match monoid_supported monoid with
    | Error reason -> Error reason
    | Ok () -> (
      let head =
        match monoid, head with
        | Monoid.Prim Monoid.Count, Expr.Var v when String.equal v var ->
          Expr.Const (Value.Int 0)
        | _ -> head
      in
      let fields =
        List.fold_left
          (fun acc s ->
            match s with
            | VFilter p -> proj_fields ~src_var:var acc p
            | VBind (_, e) -> proj_fields ~src_var:var acc e)
          (proj_fields ~src_var:var [] head)
          steps
      in
      try
        let cols =
          Array.of_list
            (List.map
               (fun f ->
                 match
                   Array.find_opt (fun (g, _) -> String.equal g f) columns
                 with
                 | Some (_, arr) -> (f, promote_memo ~field:f arr)
                 | None -> decline "field %s has no column" f)
               fields)
        in
        Ok (build_kernel ~name ~var ~cols ~nrows ~steps ~monoid ~head ())
      with Not_vectorizable reason -> Error reason)

(* --- sequential entry (Compile.query) --------------------------------- *)

(* Resolve columns, type and run — performed per invocation so the thunk
   never holds stale columns across a source invalidation: every run
   re-reads through the plugins cache exactly as the closure engine does,
   and the promotion memo absorbs the repeat cost. *)
let run_candidate ctx (c : candidate) () : Value.t =
  let cols =
    match c.source.Source.format with
    | Source.Binary_array
      when Plugins.bad_row_count ctx c.name = 0 && c.fields <> [] ->
      (* direct batch decode: no whole-column materialization at all, and
         the filters' numeric bounds prune whole batches via zone maps
         (the batch-granular analogue of the closure engine's pushdown) *)
      let ba = Structures.binarray ctx.Plugins.structures c.source in
      let hdr = Binarray.header ba in
      let ranges =
        List.filter_map
          (fun (f, lo, hi) ->
            Option.map
              (fun field -> { Binarray.field; lo; hi })
              (Binarray.field_index ba f))
          (List.filter_map
             (Analysis.range_of ~var:c.var)
             (List.concat_map Analysis.conjuncts
                (List.filter_map
                   (function VFilter p -> Some p | VBind _ -> None)
                   c.steps)))
      in
      Some
        ( Binarray.cell_count ba,
          Array.of_list
            (List.map
               (fun f ->
                 match Binarray.field_index ba f with
                 | None -> decline "binary array has no field %s" f
                 | Some idx ->
                   let fld = List.nth hdr.Binarray.fields idx in
                   if fld.Binarray.is_float then (f, ColRawF (ba, idx))
                   else (f, ColRawI (ba, idx)))
               c.fields),
          if ranges = [] then None else Some (ba, ranges) )
    | _ ->
      Option.map
        (fun (nrows, cols) ->
          ( nrows,
            Array.of_list
              (List.map (fun (f, arr) -> (f, promote_memo ~field:f arr)) cols),
            None ))
        (Plugins.column_arrays ctx c.source ~fields:c.fields)
  in
  match cols with
  | None ->
    decline "source %s has no columnar view (cleaning policy or format)" c.name
  | Some (nrows, cols, prune) ->
    let k =
      build_kernel ?prune ~name:c.name ~var:c.var ~cols ~nrows ~steps:c.steps
        ~monoid:c.monoid ~head:c.head ()
    in
    let inst = instantiate k in
    let acc = run_range inst ~lo:0 ~hi:nrows in
    flush_feedback ctx k;
    if nrows > 0 then
      Feedback.record ctx.Plugins.feedback
        ~key:(Feedback.cardinality_key c.name)
        ~observed:(float_of_int nrows);
    Monoid.finalize c.monoid acc

(* The wiring point for {!Compile.query}: [`Run] executes the whole plan
   vectorized (raising {!Not_vectorizable} at run time when columns turn
   out untypeable — the caller records the rung and falls back), [`Decline]
   is a static refusal with its reason, [`Silent] plans were never
   candidates. *)
let compile ctx (p : Plan.t) :
    [ `Run of unit -> Value.t | `Decline of string | `Silent ] =
  match classify ctx p with
  | `Silent -> `Silent
  | `Decline reason ->
    note_global_fallback reason;
    `Decline reason
  | `Candidate c -> `Run (run_candidate ctx c)

(* record a fallback in the process-global stats as well as the ambient
   session (callers own the session-side note) *)
let note_fallback_stats reason = note_global_fallback reason
