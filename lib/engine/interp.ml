open Vida_data
open Vida_calculus
open Vida_algebra

module Vtbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash ks = List.fold_left (fun acc v -> (acc * 65599) + Value.hash v) 17 ks
end)

type env = (string * Value.t) list

module Governor = Vida_governor.Governor

(* Charge an operator's materialized bindings (join build side, product
   snapshot, group state) against the ambient governor memory budget.
   Sizing is skipped entirely when no budget is active. *)
let charge_env (env : env) =
  if Governor.budgeted () then
    Governor.charge ~source:"interp"
      (List.fold_left
         (fun acc (_, v) -> acc + 16 + Vida_storage.Cache.value_bytes v)
         0 env)

let charge_value v =
  if Governor.budgeted () then
    Governor.charge ~source:"interp" (16 + Vida_storage.Cache.value_bytes v)

let eval_scalar ctx (env : env) e =
  (* generic engines re-resolve names per tuple: rebuild the interpreter
     environment each time (deliberately; this is the measured overhead) *)
  let base =
    List.fold_left
      (fun acc (x, v) -> Eval.bind x v acc)
      Eval.empty_env ctx.Plugins.params
  in
  let base =
    (* resolve source names lazily only if the scalar mentions them *)
    List.fold_left
      (fun acc name ->
        match Vida_catalog.Registry.find ctx.Plugins.registry name with
        | Some source when List.mem name (Expr.free_vars e) ->
          Eval.bind name (Plugins.materialize_source ctx source) acc
        | _ -> acc)
      base
      (Vida_catalog.Registry.names ctx.Plugins.registry)
  in
  let full = List.fold_left (fun acc (x, v) -> Eval.bind x v acc) base env in
  Eval.eval full e

let rec stream ctx (p : Plan.t) (emit : env -> unit) : unit =
  match p with
  | Plan.Unit -> emit []
  | Plan.Source { var; expr } ->
    (* generic plugin: whole elements, no projection pushdown; every tuple
       entering the pipeline is a cooperative cancellation/deadline poll *)
    Plugins.producer ctx expr ~need:Analysis.Whole (fun v ->
        Governor.poll ~source:"interp" ();
        emit [ (var, v) ])
  | Plan.Select { pred; child } ->
    stream ctx child (fun env -> if Eval.truthy (eval_scalar ctx env pred) then emit env)
  | Plan.Map { var; expr; child } ->
    stream ctx child (fun env -> emit (env @ [ (var, eval_scalar ctx env expr) ]))
  | Plan.Unnest { var; path; outer; child } ->
    stream ctx child (fun env ->
        let elements =
          match eval_scalar ctx env path with
          | Value.Null -> []
          | coll -> Value.elements coll
        in
        match elements with
        | [] -> if outer then emit (env @ [ (var, Value.Null) ])
        | vs -> List.iter (fun v -> emit (env @ [ (var, v) ])) vs)
  | Plan.Product { left; right } ->
    let rights = ref [] in
    stream ctx right (fun env ->
        charge_env env;
        rights := env :: !rights);
    Governor.checkpoint ~source:"interp" ();
    let rights = List.rev !rights in
    stream ctx left (fun lenv -> List.iter (fun renv -> emit (lenv @ renv)) rights)
  | Plan.Join { pred; left; right } -> (
    let lvars = Plan.bound_vars left and rvars = Plan.bound_vars right in
    let keys, residual = Analysis.split_equi ~left:lvars ~right:rvars pred in
    match keys with
    | [] ->
      stream ctx
        (Plan.Select { pred; child = Plan.Product { left; right } })
        emit
    | keys ->
      let table : env list Vtbl.t = Vtbl.create 1024 in
      stream ctx right (fun renv ->
          let key = List.map (fun (_, rk) -> eval_scalar ctx renv rk) keys in
          if not (List.exists (fun v -> v = Value.Null) key) then (
            charge_env renv;
            let bucket = try Vtbl.find table key with Not_found -> [] in
            Vtbl.replace table key (renv :: bucket)));
      (* hash build done: boundary check before the probe phase starts *)
      Governor.checkpoint ~source:"interp" ();
      stream ctx left (fun lenv ->
          let key = List.map (fun (lk, _) -> eval_scalar ctx lenv lk) keys in
          if not (List.exists (fun v -> v = Value.Null) key) then
            match Vtbl.find_opt table key with
            | None -> ()
            | Some bucket ->
              List.iter
                (fun renv ->
                  let env = lenv @ renv in
                  match residual with
                  | None -> emit env
                  | Some r -> if Eval.truthy (eval_scalar ctx env r) then emit env)
                (List.rev bucket)))
  | Plan.Reduce _ -> invalid_arg "Interp: nested Reduce"
  | Plan.Nest { monoid; var; head; keys; child } ->
    let table : Value.t ref Vtbl.t = Vtbl.create 256 in
    let order = ref [] in
    stream ctx child (fun env ->
        let key = List.map (fun (_, k) -> eval_scalar ctx env k) keys in
        let acc =
          match Vtbl.find_opt table key with
          | Some acc -> acc
          | None ->
            let acc = ref (Monoid.zero monoid) in
            Vtbl.add table key acc;
            order := key :: !order;
            acc
        in
        let unit = Monoid.unit monoid (eval_scalar ctx env head) in
        charge_value unit;
        acc := Monoid.merge monoid !acc unit);
    Governor.checkpoint ~source:"interp" ();
    List.iter
      (fun key ->
        let acc = Vtbl.find table key in
        emit
          (List.map2 (fun (name, _) v -> (name, v)) keys key
          @ [ (var, Monoid.finalize monoid !acc) ]))
      (List.rev !order)

let query ctx (plan : Plan.t) =
  match plan with
  | Plan.Reduce { monoid; head; child } ->
    fun () ->
      let acc = ref (Monoid.zero monoid) in
      stream ctx child (fun env ->
          acc := Monoid.merge monoid !acc (Monoid.unit monoid (eval_scalar ctx env head)));
      Monoid.finalize monoid !acc
  | p ->
    fun () ->
      let out = ref [] in
      stream ctx p (fun env -> out := Value.Record env :: !out);
      Value.Bag (List.rev !out)
