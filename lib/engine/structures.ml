open Vida_raw
open Vida_catalog

type t = {
  buffers : (string, Raw_buffer.t) Hashtbl.t;
  posmaps : (string, Positional_map.t) Hashtbl.t;
  semi_indexes : (string, Semi_index.t) Hashtbl.t;
  xml_indexes : (string, Xml_index.t) Hashtbl.t;
  binarrays : (string, Binarray.t) Hashtbl.t;
  (* one mutex over all memo tables: concurrent sessions must never
     observe a half-built structure or build the same one twice. Builds
     run under the lock — second-comers wait and reuse, and structure
     builds parallelize internally via morsels, so serializing distinct
     builds costs little next to returning a torn index *)
  lock : Vida_sync.Lock.t;
  (* sidecars normally live next to the data ([<path>.vidx]); a state
     directory centralizes them under [DIR/structures/<md5(path)>.vidx]
     so read-only data directories still get warm restarts *)
  mutable sidecar_dir : string option;
  mutable warm_restores : int;  (* posmaps restored from a sidecar *)
  mutable rebuilds : int;  (* posmaps built from the raw file *)
}

let create () =
  { buffers = Hashtbl.create 8; posmaps = Hashtbl.create 8;
    semi_indexes = Hashtbl.create 8; xml_indexes = Hashtbl.create 8;
    binarrays = Hashtbl.create 8;
    lock = Vida_sync.Lock.create ~rank:50 ~name:"engine.structures" ();
    sidecar_dir = None; warm_restores = 0; rebuilds = 0 }

let locked t f = Vida_sync.Lock.protect t.lock f

let source_path (source : Source.t) =
  match source.Source.path with
  | Some p -> p
  | None ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures: source %S has no backing file" source.Source.name

let memo t table key f =
  locked t (fun () ->
      match Hashtbl.find_opt table key with
      | Some v -> v
      | None ->
        let v = f () in
        Hashtbl.replace table key v;
        v)

(* variant for callers already holding [t.lock] — a checked contract:
   the sanitizer flags any call from a thread not holding the lock *)
let memo_unlocked t table key f =
  Vida_sync.Lock.assert_held t.lock;
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.replace table key v;
    v

let buffer_unlocked t source =
  memo_unlocked t t.buffers source.Source.name (fun () ->
      Raw_buffer.of_path (source_path source))

let buffer t source =
  memo t t.buffers source.Source.name (fun () ->
      Raw_buffer.of_path (source_path source))

let sidecar_digest source = Digest.to_hex (Digest.string (source_path source))

let sidecar_path t source =
  match t.sidecar_dir with
  | None -> source_path source ^ ".vidx"
  | Some dir -> Filename.concat dir (sidecar_digest source ^ ".vidx")

let set_sidecar_dir t dir = locked t (fun () -> t.sidecar_dir <- Some dir)
let warm_restores t = locked t (fun () -> t.warm_restores)
let rebuilds t = locked t (fun () -> t.rebuilds)

let posmap ?domains t source =
  match source.Source.format with
  | Source.Csv { delim; header; _ } ->
    memo t t.posmaps source.Source.name (fun () ->
        (* a persisted sidecar from an earlier session restores the map
           without re-scanning; a missing, corrupt or stale sidecar
           (fingerprint mismatch) costs only a rebuild from raw — never
           wrong answers *)
        match
          Positional_map.load ~delim (buffer_unlocked t source)
            ~path:(sidecar_path t source)
        with
        | Ok pm ->
          t.warm_restores <- t.warm_restores + 1;
          pm
        | Error err ->
          (* note the degradation for the governor report, except for the
             ordinary cold start where no sidecar exists yet *)
          (match err with
          | Vida_error.Stale_auxiliary { reason; _ }
            when not (String.equal reason "no sidecar") ->
            Vida_governor.Governor.note_fallback ~stage:"sidecar->raw"
              ~reason ()
          | _ -> ());
          t.rebuilds <- t.rebuilds + 1;
          Positional_map.build ~delim ~header ?domains (buffer_unlocked t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.posmap: %S is not a CSV source" source.Source.name

let semi_index ?domains t source =
  match source.Source.format with
  | Source.Json_lines _ ->
    memo t t.semi_indexes source.Source.name (fun () ->
        Semi_index.build ?domains (buffer_unlocked t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.semi_index: %S is not a JSON source" source.Source.name

let xml_index t source =
  match source.Source.format with
  | Source.Xml _ ->
    memo t t.xml_indexes source.Source.name (fun () ->
        Xml_index.build (buffer_unlocked t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.xml_index: %S is not an XML source" source.Source.name

let binarray t source =
  match source.Source.format with
  | Source.Binary_array ->
    memo t t.binarrays source.Source.name (fun () ->
        Binarray.open_file (buffer_unlocked t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.binarray: %S is not a binary-array source" source.Source.name

let peek_buffer t name = locked t (fun () -> Hashtbl.find_opt t.buffers name)
let peek_posmap t name = locked t (fun () -> Hashtbl.find_opt t.posmaps name)

let checkpoint_posmap t source =
  match locked t (fun () -> Hashtbl.find_opt t.posmaps source.Source.name) with
  | None -> false
  | Some pm ->
    Positional_map.save pm ~path:(sidecar_path t source);
    true

let peek_semi_index t name =
  locked t (fun () -> Hashtbl.find_opt t.semi_indexes name)

(* --- append-aware incremental repair (paper §2.1, refined) ---

   §2.1 drops auxiliary structures when the underlying file changes. For
   the common live-data case — the file grew by append, its old prefix
   untouched (see {!Vida_raw.Delta}) — dropping wastes every scan already
   paid for. Instead each built structure is extended in place from the
   old tail, and the caller learns the old item counts so cached columns
   can be extended too. Binary arrays are simply re-opened (their open is
   a header parse, not a scan). *)

type repair = {
  new_buffer : Raw_buffer.t;
  csv : (Positional_map.t * int) option;  (* extended map, old row count *)
  json : (Semi_index.t * int) option;  (* extended index, old object count *)
  xml : (Xml_index.t * int * bool) option;
      (* extended index, old element count, [true] when a new repeated tag
         appeared (normalized shape of old elements changed) *)
}

let repair_appended t source =
  locked t @@ fun () ->
  let name = source.Source.name in
  let new_buffer = Raw_buffer.of_path (source_path source) in
  (* repair is not lazy: load now, outside any epoch, so the extended
     structures and the buffer they index agree on one generation *)
  ignore (Raw_buffer.contents new_buffer);
  let csv =
    match Hashtbl.find_opt t.posmaps name with
    | None -> None
    | Some pm ->
      let old_rows = Positional_map.row_count pm in
      let pm = Positional_map.extend pm new_buffer in
      Hashtbl.replace t.posmaps name pm;
      Some (pm, old_rows)
  in
  let json =
    match Hashtbl.find_opt t.semi_indexes name with
    | None -> None
    | Some si ->
      let old_objects = Semi_index.object_count si in
      let si = Semi_index.extend si new_buffer in
      Hashtbl.replace t.semi_indexes name si;
      Some (si, old_objects)
  in
  let xml =
    match Hashtbl.find_opt t.xml_indexes name with
    | None -> None
    | Some xi ->
      let old_elements = Xml_index.element_count xi in
      let xi, new_list_tag = Xml_index.extend xi new_buffer in
      Hashtbl.replace t.xml_indexes name xi;
      Some (xi, old_elements, new_list_tag)
  in
  Hashtbl.remove t.binarrays name;
  Hashtbl.replace t.buffers name new_buffer;
  { new_buffer; csv; json; xml }

let invalidate t name =
  locked t (fun () ->
      Hashtbl.remove t.buffers name;
      Hashtbl.remove t.posmaps name;
      Hashtbl.remove t.semi_indexes name;
      Hashtbl.remove t.xml_indexes name;
      Hashtbl.remove t.binarrays name)

let footprint t =
  locked t (fun () ->
      Hashtbl.fold (fun _ pm acc -> acc + Positional_map.footprint pm) t.posmaps 0
      + Hashtbl.fold
          (fun _ si acc -> acc + Semi_index.footprint si)
          t.semi_indexes 0
      + Hashtbl.fold
          (fun _ xi acc -> acc + Xml_index.footprint xi)
          t.xml_indexes 0)
