open Vida_raw
open Vida_catalog

type t = {
  buffers : (string, Raw_buffer.t) Hashtbl.t;
  posmaps : (string, Positional_map.t) Hashtbl.t;
  semi_indexes : (string, Semi_index.t) Hashtbl.t;
  xml_indexes : (string, Xml_index.t) Hashtbl.t;
  binarrays : (string, Binarray.t) Hashtbl.t;
}

let create () =
  { buffers = Hashtbl.create 8; posmaps = Hashtbl.create 8;
    semi_indexes = Hashtbl.create 8; xml_indexes = Hashtbl.create 8;
    binarrays = Hashtbl.create 8 }

let source_path (source : Source.t) =
  match source.Source.path with
  | Some p -> p
  | None ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures: source %S has no backing file" source.Source.name

let memo table key f =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.replace table key v;
    v

let buffer t source =
  memo t.buffers source.Source.name (fun () -> Raw_buffer.of_path (source_path source))

let sidecar_path source = source_path source ^ ".vidx"

let posmap ?domains t source =
  match source.Source.format with
  | Source.Csv { delim; header; _ } ->
    memo t.posmaps source.Source.name (fun () ->
        (* a persisted sidecar from an earlier session restores the map
           without re-scanning; a missing, corrupt or stale sidecar
           (fingerprint mismatch) costs only a rebuild from raw — never
           wrong answers *)
        match Positional_map.load ~delim (buffer t source) ~path:(sidecar_path source) with
        | Ok pm -> pm
        | Error err ->
          (* note the degradation for the governor report, except for the
             ordinary cold start where no sidecar exists yet *)
          (match err with
          | Vida_error.Stale_auxiliary { reason; _ }
            when not (String.equal reason "no sidecar") ->
            Vida_governor.Governor.note_fallback ~stage:"sidecar->raw"
              ~reason ()
          | _ -> ());
          Positional_map.build ~delim ~header ?domains (buffer t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.posmap: %S is not a CSV source" source.Source.name

let semi_index ?domains t source =
  match source.Source.format with
  | Source.Json_lines _ ->
    memo t.semi_indexes source.Source.name (fun () ->
        Semi_index.build ?domains (buffer t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.semi_index: %S is not a JSON source" source.Source.name

let xml_index t source =
  match source.Source.format with
  | Source.Xml _ ->
    memo t.xml_indexes source.Source.name (fun () -> Xml_index.build (buffer t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.xml_index: %S is not an XML source" source.Source.name

let binarray t source =
  match source.Source.format with
  | Source.Binary_array ->
    memo t.binarrays source.Source.name (fun () -> Binarray.open_file (buffer t source))
  | _ ->
    Vida_error.invalid_request ~source:source.Source.name
      "Structures.binarray: %S is not a binary-array source" source.Source.name

let peek_posmap t name = Hashtbl.find_opt t.posmaps name

let checkpoint_posmap t source =
  match Hashtbl.find_opt t.posmaps source.Source.name with
  | None -> false
  | Some pm ->
    Positional_map.save pm ~path:(sidecar_path source);
    true
let peek_semi_index t name = Hashtbl.find_opt t.semi_indexes name

let invalidate t name =
  Hashtbl.remove t.buffers name;
  Hashtbl.remove t.posmaps name;
  Hashtbl.remove t.semi_indexes name;
  Hashtbl.remove t.xml_indexes name;
  Hashtbl.remove t.binarrays name

let footprint t =
  Hashtbl.fold (fun _ pm acc -> acc + Positional_map.footprint pm) t.posmaps 0
  + Hashtbl.fold (fun _ si acc -> acc + Semi_index.footprint si) t.semi_indexes 0
  + Hashtbl.fold (fun _ xi acc -> acc + Xml_index.footprint xi) t.xml_indexes 0
