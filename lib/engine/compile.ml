open Vida_data
open Vida_calculus
open Vida_algebra

(* Hash tables keyed by lists of values (join/group keys). *)
module Vkey = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash ks = List.fold_left (fun acc v -> (acc * 65599) + Value.hash v) 17 ks
end

module Vtbl = Hashtbl.Make (Vkey)

module Governor = Vida_governor.Governor

(* Charge materialized operator state (join build snapshots, product
   snapshots, group accumulators) against the ambient governor memory
   budget; sizing is skipped when no budget is active. *)
let charge_snapshot (vs : Value.t list) =
  if Governor.budgeted () then
    Governor.charge ~source:"compile"
      (List.fold_left
         (fun acc v -> acc + 16 + Vida_storage.Cache.value_bytes v)
         0 vs)

let charge_value v =
  if Governor.budgeted () then
    Governor.charge ~source:"compile" (16 + Vida_storage.Cache.value_bytes v)

(* Binders of a plan subtree, in binding order (used for slot allocation and
   for snapshotting a side of a join). *)
let rec binders (p : Plan.t) : string list =
  match p with
  | Plan.Unit -> []
  | Plan.Source { var; _ } -> [ var ]
  | Plan.Select { child; _ } -> binders child
  | Plan.Map { var; child; _ } -> binders child @ [ var ]
  | Plan.Product { left; right } | Plan.Join { left; right; _ } ->
    binders left @ binders right
  | Plan.Unnest { var; child; _ } -> binders child @ [ var ]
  | Plan.Reduce { child; _ } -> binders child
  | Plan.Nest { var; keys; child; _ } -> binders child @ List.map fst keys @ [ var ]

(* --- scalar compilation --- *)

let rec compile_scalar ctx (slots : (string * int) list) (e : Expr.t) :
    Value.t array -> Value.t =
  match e with
  | Expr.Const v -> fun _ -> v
  | Expr.Var x -> (
    match List.assoc_opt x slots with
    | Some i -> fun env -> env.(i)
    | None ->
      (* session-level free variable: parameter or registered source,
         resolved once at first use *)
      let resolved =
        lazy
          (match List.assoc_opt x ctx.Plugins.params with
          | Some v -> v
          | None -> (
            match Vida_catalog.Registry.find ctx.Plugins.registry x with
            | Some source -> Plugins.materialize_source ctx source
            | None -> raise (Plugins.Engine_error (Printf.sprintf "unbound variable %s" x))))
      in
      fun _ -> Lazy.force resolved)
  | Expr.Proj (e, f) ->
    let ce = compile_scalar ctx slots e in
    fun env -> (
      match ce env with
      | Value.Null -> Value.Null
      | Value.Record _ as r -> (
        match Value.field_opt r f with Some v -> v | None -> Value.Null)
      | v ->
        raise
          (Eval.Error
             (Printf.sprintf "projection .%s from non-record %s" f (Value.to_string v))))
  | Expr.Record fields ->
    let compiled = List.map (fun (n, e) -> (n, compile_scalar ctx slots e)) fields in
    fun env -> Value.Record (List.map (fun (n, c) -> (n, c env)) compiled)
  | Expr.If (c, t, f) ->
    let cc = compile_scalar ctx slots c
    and ct = compile_scalar ctx slots t
    and cf = compile_scalar ctx slots f in
    fun env -> (
      match cc env with
      | Value.Bool true -> ct env
      | Value.Bool false | Value.Null -> cf env
      | v -> raise (Eval.Error (Printf.sprintf "if condition evaluated to %s" (Value.to_string v))))
  | Expr.BinOp (op, a, b) ->
    let ca = compile_scalar ctx slots a and cb = compile_scalar ctx slots b in
    fun env -> Eval.eval_binop op (ca env) (cb env)
  | Expr.UnOp (op, a) ->
    let ca = compile_scalar ctx slots a in
    fun env -> Eval.eval_unop op (ca env)
  | Expr.Zero m ->
    let z = Monoid.zero m in
    fun _ -> z
  | Expr.Singleton (m, e) ->
    let ce = compile_scalar ctx slots e in
    fun env -> Monoid.unit m (ce env)
  | Expr.Merge (m, a, b) ->
    let ca = compile_scalar ctx slots a and cb = compile_scalar ctx slots b in
    fun env -> Monoid.merge m (ca env) (cb env)
  | Expr.Index (e, idxs) ->
    let ce = compile_scalar ctx slots e
    and cidxs = List.map (compile_scalar ctx slots) idxs in
    fun env -> (
      match ce env with
      | Value.Null -> Value.Null
      | arr -> Value.array_get arr (List.map (fun c -> Value.to_int (c env)) cidxs))
  | Expr.Comp _ ->
    (* correlated subquery: compile to a closure over the outer env *)
    compile_subquery ctx slots e
  | Expr.Lambda _ | Expr.Apply _ ->
    (* functions escape closure compilation: generic interpreter fallback *)
    let base = lazy (Plugins.base_eval_env ctx) in
    fun env ->
      let full =
        List.fold_left
          (fun acc (x, i) -> Eval.bind x env.(i) acc)
          (Lazy.force base) slots
      in
      Eval.eval full e

(* --- correlated subqueries --- *)

and compile_subquery ctx outer_slots (e : Expr.t) : Value.t array -> Value.t =
  let plan = Translate.plan_of_comp e in
  let free = Plan.free_vars plan in
  let outer_needed = List.filter (fun v -> List.mem_assoc v outer_slots) free in
  let sub_outer_slots = List.mapi (fun i v -> (v, i)) outer_needed in
  let run = compile_query ctx ~outer_slots:sub_outer_slots plan in
  let copies =
    List.map (fun (v, dst) -> (List.assoc v outer_slots, dst)) sub_outer_slots
  in
  fun outer_env ->
    run (fun sub_env ->
        List.iter (fun (src, dst) -> sub_env.(dst) <- outer_env.(src)) copies)

(* --- operator compilation --- *)

(* [compile_query ctx ~outer_slots plan] returns [run] such that [run init]
   executes the plan and yields its value; [init] preloads outer bindings
   into the fresh environment. *)
and compile_query ctx ~outer_slots (plan : Plan.t) : (Value.t array -> unit) -> Value.t =
  let base = List.length outer_slots in
  let flushes : (unit -> unit) list ref = ref [] in
  match plan with
  | Plan.Reduce { monoid; head; child } ->
    let vars = binders child in
    let slots = outer_slots @ List.mapi (fun i v -> (v, base + i)) vars in
    let nslots = base + List.length vars in
    let chead = compile_scalar ctx slots head in
    let needs = needs_table plan in
    fun init ->
      let env = Array.make nslots Value.Null in
      init env;
      let acc = ref (Monoid.zero monoid) in
      let run =
        compile_ops ctx slots needs flushes env child (fun () ->
            acc := Monoid.merge monoid !acc (Monoid.unit monoid (chead env)))
      in
      run ();
      List.iter (fun flush -> flush ()) !flushes;
      Monoid.finalize monoid !acc
  | p ->
    (* non-reduce top: produce the bag of binding records, matching the
       reference executor *)
    let vars = binders p in
    let slots = outer_slots @ List.mapi (fun i v -> (v, base + i)) vars in
    let nslots = base + List.length vars in
    (* a bare stream outputs every binding whole, so no projection pushdown *)
    let needs = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace needs v Analysis.Whole) vars;
    fun init ->
      let env = Array.make nslots Value.Null in
      init env;
      let out = ref [] in
      let run =
        compile_ops ctx slots needs flushes env p (fun () ->
            out :=
              Value.Record (List.map (fun v -> (v, env.(List.assoc v slots))) vars)
              :: !out)
      in
      run ();
      List.iter (fun flush -> flush ()) !flushes;
      Value.Bag (List.rev !out)

and needs_table (plan : Plan.t) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun var -> Hashtbl.replace tbl var (Analysis.plan_var_needs plan ~var))
    (binders plan);
  tbl

(* Compile the operator tree to a push pipeline over the shared [env].
   Operators are lightly instrumented: observed selectivities and
   cardinalities flush into [ctx.feedback] after each run (paper §5
   runtime feedback), where the optimizer picks them up for later
   queries. *)
and compile_ops ctx slots needs flushes env (p : Plan.t) (consume : unit -> unit) :
    unit -> unit =
  let slot v = List.assoc v slots in
  match p with
  | Plan.Unit -> fun () -> consume ()
  | Plan.Source { var; expr } ->
    let s = slot var in
    if List.exists (fun v -> List.mem_assoc v slots) (Expr.free_vars expr) then (
      (* correlated source: the collection expression references plan-bound
         variables (e.g. a group produced by Nest) — evaluate it against
         the environment instead of dispatching to a file plugin *)
      let ce = compile_scalar ctx slots expr in
      fun () ->
        match ce env with
        | Value.Null -> ()
        | coll ->
          List.iter
            (fun v ->
              env.(s) <- v;
              consume ())
            (Value.elements coll))
    else (
      let need =
        match Hashtbl.find_opt needs var with
        | Some n -> n
        | None -> Analysis.Whole
      in
      let produced = ref 0 in
      (match expr with
      | Expr.Var name ->
        flushes :=
          (fun () ->
            if !produced > 0 then
              Feedback.record ctx.Plugins.feedback
                ~key:(Feedback.cardinality_key name)
                ~observed:(float_of_int !produced);
            produced := 0)
          :: !flushes
      | _ -> ());
      fun () ->
        Plugins.producer ctx expr ~need (fun v ->
            Governor.poll ~source:"compile" ();
            incr produced;
            env.(s) <- v;
            consume ()))
  | Plan.Select _ -> (
    (* gather the whole selection chain so scan-level pushdown sees every
       conjunct, not just the innermost Select *)
    let rec gather acc (p : Plan.t) =
      match p with
      | Plan.Select { pred; child } -> gather (pred :: acc) child
      | p -> (acc, p)
    in
    let preds, base = gather [] p in
    (* chain the compiled filters (each instrumented for feedback) *)
    let filtered =
      List.fold_left
        (fun consume pred ->
          let cp = compile_scalar ctx slots pred in
          let seen = ref 0 and passed = ref 0 in
          flushes :=
            (fun () ->
              if !seen >= 16 then
                Feedback.record ctx.Plugins.feedback
                  ~key:(Feedback.selectivity_key pred)
                  ~observed:(float_of_int !passed /. float_of_int !seen);
              seen := 0;
              passed := 0)
            :: !flushes;
          fun () ->
            incr seen;
            if Eval.truthy (cp env) then (
              incr passed;
              consume ()))
        consume preds
    in
    (* scan-level predicate pushdown: a filtered scan of a binary array
       hands its numeric bounds to the format's zone maps, skipping blocks
       that cannot match; the exact predicates still run above *)
    match base with
    | Plan.Source { var; expr = Expr.Var name } -> (
      let source = Vida_catalog.Registry.find ctx.Plugins.registry name in
      match source with
      | Some ({ Vida_catalog.Source.format = Vida_catalog.Source.Binary_array; _ } as source) ->
        let ranges =
          List.filter_map (Analysis.range_of ~var)
            (List.concat_map Analysis.conjuncts preds)
        in
        if ranges = [] then compile_ops ctx slots needs flushes env base filtered
        else (
          let s = slot var in
          let need =
            match Hashtbl.find_opt needs var with
            | Some n -> n
            | None -> Analysis.Whole
          in
          fun () ->
            Plugins.binarray_ranged_producer ctx source need ~ranges (fun v ->
                Governor.poll ~source:"compile" ();
                env.(s) <- v;
                filtered ()))
      | _ -> compile_ops ctx slots needs flushes env base filtered)
    | base -> compile_ops ctx slots needs flushes env base filtered)
  | Plan.Map { var; expr; child } ->
    let s = slot var in
    let ce = compile_scalar ctx slots expr in
    compile_ops ctx slots needs flushes env child (fun () ->
        env.(s) <- ce env;
        consume ())
  | Plan.Unnest { var; path; outer; child } ->
    let s = slot var in
    let cp = compile_scalar ctx slots path in
    compile_ops ctx slots needs flushes env child (fun () ->
        let elements =
          match cp env with Value.Null -> [] | coll -> Value.elements coll
        in
        match elements with
        | [] ->
          if outer then (
            env.(s) <- Value.Null;
            consume ())
        | vs ->
          List.iter
            (fun v ->
              env.(s) <- v;
              consume ())
            vs)
  | Plan.Product { left; right } ->
    let right_slots = List.map slot (binders right) in
    let stored = ref [] in
    let run_right =
      compile_ops ctx slots needs flushes env right (fun () ->
          let snapshot = List.map (fun i -> env.(i)) right_slots in
          charge_snapshot snapshot;
          stored := snapshot :: !stored)
    in
    let run_left =
      compile_ops ctx slots needs flushes env left (fun () ->
          List.iter
            (fun snapshot ->
              List.iter2 (fun i v -> env.(i) <- v) right_slots snapshot;
              consume ())
            !stored)
    in
    fun () ->
      stored := [];
      run_right ();
      (* right side fully materialized: boundary check before re-scan *)
      Governor.checkpoint ~source:"compile" ();
      stored := List.rev !stored;
      run_left ()
  | Plan.Join { pred; left; right } -> (
    let lvars = binders left and rvars = binders right in
    let keys, residual = Analysis.split_equi ~left:lvars ~right:rvars pred in
    match keys with
    | [] ->
      (* no equi-conjunct: product plus filter *)
      compile_ops ctx slots needs flushes env
        (Plan.Select { pred; child = Plan.Product { left; right } })
        consume
    | keys ->
      let right_slots = List.map slot rvars in
      let lkeys = List.map (fun (l, _) -> compile_scalar ctx slots l) keys in
      let rkeys = List.map (fun (_, r) -> compile_scalar ctx slots r) keys in
      let cresidual = Option.map (compile_scalar ctx slots) residual in
      let table : Value.t list list Vtbl.t = Vtbl.create 1024 in
      let l_in = ref 0 and r_in = ref 0 and out = ref 0 in
      flushes :=
        (fun () ->
          if !l_in > 0 && !r_in > 0 then
            Feedback.record ctx.Plugins.feedback ~key:(Feedback.join_key pred)
              ~observed:
                (float_of_int !out /. (float_of_int !l_in *. float_of_int !r_in));
          l_in := 0;
          r_in := 0;
          out := 0)
        :: !flushes;
      let run_right =
        compile_ops ctx slots needs flushes env right (fun () ->
            incr r_in;
            let key = List.map (fun c -> c env) rkeys in
            (* NULL keys never match (three-valued equality) *)
            if not (List.exists (fun v -> v = Value.Null) key) then (
              let snapshot = List.map (fun i -> env.(i)) right_slots in
              charge_snapshot snapshot;
              let bucket = try Vtbl.find table key with Not_found -> [] in
              Vtbl.replace table key (snapshot :: bucket)))
      in
      let run_left =
        compile_ops ctx slots needs flushes env left (fun () ->
            incr l_in;
            let key = List.map (fun c -> c env) lkeys in
            if not (List.exists (fun v -> v = Value.Null) key) then
              match Vtbl.find_opt table key with
              | None -> ()
              | Some bucket ->
                List.iter
                  (fun snapshot ->
                    List.iter2 (fun i v -> env.(i) <- v) right_slots snapshot;
                    match cresidual with
                    | None ->
                      incr out;
                      consume ()
                    | Some cr ->
                      if Eval.truthy (cr env) then (
                        incr out;
                        consume ()))
                  (List.rev bucket))
      in
      fun () ->
        Vtbl.reset table;
        run_right ();
        (* hash build done: boundary check before the probe phase starts *)
        Governor.checkpoint ~source:"compile" ();
        run_left ())
  | Plan.Reduce _ ->
    invalid_arg "Compile: nested Reduce operator (subqueries live in scalars)"
  | Plan.Nest { monoid; var; head; keys; child } ->
    let key_slots = List.map (fun (n, _) -> slot n) keys in
    let var_slot = slot var in
    let ckeys = List.map (fun (_, k) -> compile_scalar ctx slots k) keys in
    let chead = compile_scalar ctx slots head in
    let table : Value.t ref Vtbl.t = Vtbl.create 256 in
    let order = ref [] in
    let run_child =
      compile_ops ctx slots needs flushes env child (fun () ->
          let key = List.map (fun c -> c env) ckeys in
          let acc =
            match Vtbl.find_opt table key with
            | Some acc -> acc
            | None ->
              let acc = ref (Monoid.zero monoid) in
              Vtbl.add table key acc;
              order := key :: !order;
              acc
          in
          let unit = Monoid.unit monoid (chead env) in
          charge_value unit;
          acc := Monoid.merge monoid !acc unit)
    in
    fun () ->
      Vtbl.reset table;
      order := [];
      run_child ();
      Governor.checkpoint ~source:"compile" ();
      List.iter
        (fun key ->
          let acc = Vtbl.find table key in
          List.iter2 (fun s v -> env.(s) <- v) key_slots key;
          env.(var_slot) <- Monoid.finalize monoid !acc;
          consume ())
        (List.rev !order)

(* Degradation ladder, vectorized rung (ISSUE 8): plans matching the
   vectorized fragment run as fused batch kernels; a static decline or a
   runtime [Not_vectorizable] (columns turn out untypeable, no columnar
   view under the active cleaning policy) is recorded as the
   ["vectorized->closure"] fallback and the closure engine takes over.
   Plans outside the fragment ([`Silent]) go straight to the closure
   engine — that is their designed path, not a degradation. *)
let query ctx plan =
  let closure () =
    let run = compile_query ctx ~outer_slots:[] plan in
    fun () -> run (fun _ -> ())
  in
  match Vector.compile ctx plan with
  | `Silent -> closure ()
  | `Decline reason ->
    let run = closure () in
    fun () ->
      Governor.note_fallback ~stage:"vectorized->closure" ~reason ();
      run ()
  | `Run vrun ->
    let fallback = lazy (closure ()) in
    fun () -> (
      match vrun () with
      | v -> v
      | exception Vector.Not_vectorizable reason ->
        Vector.note_fallback_stats reason;
        Governor.note_fallback ~stage:"vectorized->closure" ~reason ();
        (Lazy.force fallback) ())

let scalar ctx ~slots e = compile_scalar ctx slots e
