open Vida_data
open Vida_calculus
open Vida_algebra
open Vida_catalog
module Morsel = Vida_raw.Morsel
module Governor = Vida_governor.Governor
module Effects = Vida_analysis.Effects

(* Morsel-driven parallel execution over columnar scans.

   [try_query] recognizes plan shapes whose hot loop can fold disjoint row
   ranges on worker domains:

     - Reduce over a Select*/Map* chain on one columnar source, for every
       monoid: morsel partials are merged in morsel (= source) order, so
       non-commutative collection monoids concatenate correctly;
     - Reduce over an equi-Join of two such chains: parallel hash build
       over right-side morsels (stitched in source order), then a parallel
       probe+fold over left-side morsels;
     - a bare chain (no Reduce): parallel filtered/projected
       materialization, concatenated in morsel order — the same bag, in
       the same order, the sequential engine produces.

   Anything else returns [None] and the caller falls back to the
   sequential engines — that fallback is the correctness anchor: with
   [domains = 1] or an unsupported shape, results are the sequential
   engine's by construction.

   Worker-domain safety: each task compiles its own closures (no shared
   mutable compile state), reads immutable column arrays built up front on
   the calling domain, and polls/charges the caller's governor session
   through its atomic counters. Expressions whose compiled form could
   touch shared lazy state (subqueries, lambdas, free variables that
   resolve to registry sources and would materialize them inside a
   worker) are rejected by {!Vida_analysis.Effects.worker_verdict},
   declining parallelism rather than racing; every decline is recorded
   with its reason in {!last_declines}. *)

type decline = { where : string; reason : string }

(* Observability only: declines are recorded from whichever domain hits
   one and read by `.analyze`; a lost entry under contention costs a
   diagnostic line, never an answer. Registered race-allowed with the
   sanitizer on that basis. *)
let declines_cell = "parallel.declines"

let () =
  Vida_sync.Cell.allow_race ~name:declines_cell
    ~justification:
      "decline log is diagnostic-only; a lost entry under contention drops \
       an .analyze line, never an answer"

let declines : decline list ref = ref []

let note_decline ~where reason =
  Vida_sync.Cell.write ~name:declines_cell ~site:"parallel.note-decline";
  declines := { where; reason } :: !declines

let last_declines () =
  Vida_sync.Cell.read ~name:declines_cell ~site:"parallel.last-declines";
  List.rev !declines

(* Observation hook for the plan-shape rewrites this module performs
   (count-head neutralization, one-sided filter pushdown): same contract
   as [Vida_optimizer.Rules.checker]. *)
let checker : (rule:string -> before:Plan.t -> after:Plan.t -> unit) ref =
  ref (fun ~rule:_ ~before:_ ~after:_ -> ())

let with_checker f body =
  let saved = !checker in
  checker := f;
  Fun.protect ~finally:(fun () -> checker := saved) body

type step = Filter of Expr.t | Bind of string * Expr.t

(* Decompose Select*/Map* over a single Source; returns the source var and
   name plus the operator steps in execution order (innermost first). *)
let rec decompose (p : Plan.t) steps =
  match p with
  | Plan.Select { pred; child } -> decompose child (Filter pred :: steps)
  | Plan.Map { var; expr; child } -> decompose child (Bind (var, expr) :: steps)
  | Plan.Source { var; expr = Expr.Var name } -> Some (var, name, steps)
  | _ -> None

let chain_vars var steps =
  var :: List.filter_map (function Bind (v, _) -> Some v | Filter _ -> None) steps

(* Closure compilation of [e] must not reach shared mutable state when run
   on a worker domain; the effect analysis decides, and a decline carries
   the offending subterm so callers (and `.analyze`) can explain it. *)
let scoped ctx ~bound ~where e =
  match
    Effects.worker_verdict ~bound
      ~params:(List.map fst ctx.Plugins.params)
      e
  with
  | Ok () -> true
  | Error r ->
    note_decline ~where (Effects.reason_to_string r);
    false

let steps_scoped ctx ~bound ~where steps =
  List.for_all
    (function
      | Filter p -> scoped ctx ~bound ~where:(where ^ " filter") p
      | Bind (_, e) -> scoped ctx ~bound ~where:(where ^ " binding") e)
    steps

(* Fields of [source] the plan needs for chain variable [var]. [Whole] is
   only honored for formats whose declared field list reconstructs the
   row exactly as the sequential producer does (CSV schema, binary-array
   header); JSON/XML objects may carry fields beyond the declared element
   type, so [Whole] declines there. *)
let fields_for ctx ?(whole = false) plan ~var (source : Source.t) =
  match
    if whole then Analysis.Whole else Analysis.plan_var_needs plan ~var
  with
  | Analysis.Fields fs -> Some fs
  | Analysis.Whole -> (
    match source.Source.format with
    | Source.Csv { schema; _ } -> Some (Schema.names schema)
    | Source.Binary_array ->
      Some
        (List.map
           (fun f -> f.Vida_raw.Binarray.name)
           (Vida_raw.Binarray.header
              (Structures.binarray ctx.Plugins.structures source))
             .fields)
    | _ -> None)

type chain = {
  var : string;
  name : string;  (* registry name of the source *)
  steps : step list;
  n : int;  (* row count *)
  columns : (string * Value.t array) array;
}

(* Rebuild the algebra subtree a chain stands for — used to hand the
   engine's own rewrites to the plan verifier in the same [before]/[after]
   form the optimizer rules use. *)
let plan_of_step child = function
  | Filter pred -> Plan.Select { pred; child }
  | Bind (var, expr) -> Plan.Map { var; expr; child }

let plan_of_chain (c : chain) =
  List.fold_left plan_of_step
    (Plan.Source { var = c.var; expr = Expr.Var c.name })
    c.steps

let resolve_chain ctx ?whole plan (p : Plan.t) =
  match decompose p [] with
  | None -> None
  | Some (var, name, steps) -> (
    match Registry.find ctx.Plugins.registry name with
    | None -> None
    | Some source -> (
      let bound = chain_vars var steps in
      if not (steps_scoped ctx ~bound ~where:"chain" steps) then None
      else
        match fields_for ctx ?whole plan ~var source with
        | None -> None (* Whole needed, format can't reconstruct rows *)
        | Some fields -> (
          (* [] is fine: only the row count matters (e.g. a neutralized
             count head) and column_arrays reports it for every format *)
          match Plugins.column_arrays ctx source ~fields with
          | None -> None
          | Some (n, columns) ->
            Some { var; name; steps; n; columns = Array.of_list columns })))

(* Per-task compiled pipeline for one chain: applies steps to the row
   loaded in slot [base] and calls [sink] on rows that survive. Compiled
   closures are task-local; the column arrays they read are immutable. *)
let compile_steps ctx ~slots steps =
  List.map
    (function
      | Filter pred -> `Filter (Compile.scalar ctx ~slots pred)
      | Bind (v, e) -> `Bind (List.assoc v slots, Compile.scalar ctx ~slots e))
    steps

let run_steps compiled env k =
  let rec apply = function
    | [] -> k ()
    | `Filter cp :: rest -> if Eval.truthy (cp env) then apply rest
    | `Bind (slot, ce) :: rest ->
      env.(slot) <- ce env;
      apply rest
  in
  apply compiled

(* Row record built from hoisted column arrays without a per-row closure. *)
let record_of_columns columns i =
  let rec go j acc =
    if j < 0 then acc
    else
      let f, arr = Array.unsafe_get columns j in
      go (j - 1) ((f, arr.(i)) :: acc)
  in
  Value.Record (go (Array.length columns - 1) [])

(* Morsels per domain: a few extra so the atomic-counter scheduler can
   rebalance skew between chunks. *)
let morsel_ranges n d = Morsel.chunks n (d * 4)

(* Discharge the monoid-law obligation before merging partials: the
   indexed fold below combines them in morsel (= source) order, an
   [`Ordered] strategy, which {!Effects.check_merge} proves sufficient for
   every monoid — including non-commutative list/array concatenation. *)
let merge_partials monoid partials =
  (match Effects.check_merge monoid ~strategy:`Ordered with
  | Ok () -> ()
  | Error reason ->
    raise
      (Vida_error.Error
         (Vida_error.Plan_invalid
            { stage = "parallel"; rule = Some "morsel-merge"; reason })));
  Array.fold_left (Monoid.merge monoid) (Monoid.zero monoid) partials

(* --- Reduce over a single chain ------------------------------------- *)

(* Vectorized rung inside morsels: the kernel is compiled once on the
   calling domain (typing the promoted columns); each worker instantiates
   its own scratch and folds its ranges batch-at-a-time. Partials are the
   same pre-finalize accumulator carriers the tuple path produces, so
   {!merge_partials} is unchanged. A kernel that cannot be built (untyped
   columns, unsupported expression) records the vectorized->closure rung
   and the tuple-at-a-time loop below takes over. *)
let fold_chain_vectorized ctx ~domains ~monoid ~head (c : chain) =
  let steps =
    List.map
      (function
        | Filter pred -> Vector.VFilter pred
        | Bind (v, e) -> Vector.VBind (v, e))
      c.steps
  in
  match
    Vector.compile_chain ctx ~name:c.name ~var:c.var ~columns:c.columns
      ~nrows:c.n ~steps ~monoid ~head
  with
  | Error reason ->
    Vector.note_fallback_stats reason;
    Governor.note_fallback ~stage:"vectorized->closure" ~reason ();
    None
  | Ok kernel ->
    (* P10: discharge the merge-order obligation explicitly on every
       vectorized dispatch when the sanitizer is active. The indexed fold
       in [merge_partials] is an [`Ordered] merge; a future scheduler
       that reordered partials would fail here before returning rows. *)
    if Vida_sync.enabled () then begin
      Vida_sync.note_kernel_check ();
      match Vida_analysis.Kernel.check_merge_order monoid ~strategy:`Ordered with
      | Some reason ->
        Vida_sync.kernel_failed ~id:"P10" ~subject:c.name "%s" reason
      | None -> ()
    end;
    let ranges = morsel_ranges c.n domains in
    let partials =
      Morsel.run ~domains ~tasks:(Array.length ranges) (fun t ->
          let inst = Vector.instantiate kernel in
          let lo, hi = ranges.(t) in
          Vector.run_range inst ~lo ~hi)
    in
    Vector.flush_feedback ctx kernel;
    Some (Monoid.finalize monoid (merge_partials monoid partials))

let fold_chain_rows ctx ~domains ~monoid ~head (c : chain) =
  let vars = chain_vars c.var c.steps in
  let slots = List.mapi (fun i v -> (v, i)) vars in
  let nslots = List.length vars in
  let ranges = morsel_ranges c.n domains in
  let partials =
    Morsel.run ~domains ~tasks:(Array.length ranges) (fun t ->
        let compiled = compile_steps ctx ~slots c.steps in
        let chead = Compile.scalar ctx ~slots head in
        let env = Array.make nslots Value.Null in
        let acc = ref (Monoid.zero monoid) in
        let lo, hi = ranges.(t) in
        for i = lo to hi - 1 do
          Governor.poll ~source:"parallel" ();
          env.(0) <- record_of_columns c.columns i;
          run_steps compiled env (fun () ->
              acc := Monoid.merge monoid !acc (Monoid.unit monoid (chead env)))
        done;
        !acc)
  in
  (* indexed merge: partials combine in morsel (= source) order, which is
     what makes non-commutative monoids (list/array concat) correct *)
  Monoid.finalize monoid (merge_partials monoid partials)

let fold_chain ctx ~domains ~monoid ~head (c : chain) =
  match fold_chain_vectorized ctx ~domains ~monoid ~head c with
  | Some v -> v
  | None -> fold_chain_rows ctx ~domains ~monoid ~head c

(* --- bare chain: parallel filtered/projected materialization --------- *)

let materialize_chain ctx ~domains (c : chain) =
  let vars = chain_vars c.var c.steps in
  let slots = List.mapi (fun i v -> (v, i)) vars in
  let nslots = List.length vars in
  let ranges = morsel_ranges c.n domains in
  let chunks =
    Morsel.run ~domains ~tasks:(Array.length ranges) (fun t ->
        let compiled = compile_steps ctx ~slots c.steps in
        let env = Array.make nslots Value.Null in
        let out = ref [] in
        let lo, hi = ranges.(t) in
        for i = lo to hi - 1 do
          Governor.poll ~source:"parallel" ();
          env.(0) <- record_of_columns c.columns i;
          run_steps compiled env (fun () ->
              out :=
                Value.Record
                  (List.map (fun (v, s) -> (v, env.(s))) slots)
                :: !out)
        done;
        List.rev !out)
  in
  Value.Bag (List.concat (Array.to_list chunks))

(* --- Reduce over an equi-join of two chains -------------------------- *)

module Vkey = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash ks = List.fold_left (fun acc v -> (acc * 65599) + Value.hash v) 17 ks
end

module Vtbl = Hashtbl.Make (Vkey)

let charge_snapshot (vs : Value.t list) =
  if Governor.budgeted () then
    Governor.charge ~source:"parallel"
      (List.fold_left
         (fun acc v -> acc + 16 + Vida_storage.Cache.value_bytes v)
         0 vs)

let join_reduce ctx ~domains ~monoid ~head ~pred ~post (lc : chain) (rc : chain) =
  let lvars = chain_vars lc.var lc.steps and rvars = chain_vars rc.var rc.steps in
  let post_vars =
    List.filter_map (function Bind (v, _) -> Some v | Filter _ -> None) post
  in
  let vars = lvars @ rvars @ post_vars in
  let slots = List.mapi (fun i v -> (v, i)) vars in
  let nslots = List.length vars in
  let lbase = 0 and rbase = List.length lvars in
  let keys, residual = Analysis.split_equi ~left:lvars ~right:rvars pred in
  if keys = [] then None
  else if
    not
      (scoped ctx ~bound:vars ~where:"join head" head
      && steps_scoped ctx ~bound:vars ~where:"post-join" post
      && List.for_all
           (fun (l, r) ->
             scoped ctx ~bound:vars ~where:"join key" l
             && scoped ctx ~bound:vars ~where:"join key" r)
           keys
      &&
      match residual with
      | Some r -> scoped ctx ~bound:vars ~where:"join residual" r
      | None -> true)
  then None
  else begin
    let right_slots = List.mapi (fun i _ -> rbase + i) rvars in
    (* build: each right-side morsel collects (key, snapshot) pairs in row
       order; the hash table is stitched on the calling domain in morsel
       order, reproducing the sequential engine's bucket order exactly *)
    let rranges = morsel_ranges rc.n domains in
    let built =
      Morsel.run ~domains ~tasks:(Array.length rranges) (fun t ->
          let compiled = compile_steps ctx ~slots rc.steps in
          let rkeys = List.map (fun (_, r) -> Compile.scalar ctx ~slots r) keys in
          let env = Array.make nslots Value.Null in
          let out = ref [] in
          let lo, hi = rranges.(t) in
          for i = lo to hi - 1 do
            Governor.poll ~source:"parallel" ();
            env.(rbase) <- record_of_columns rc.columns i;
            run_steps compiled env (fun () ->
                let key = List.map (fun c -> c env) rkeys in
                (* NULL keys never match (three-valued equality) *)
                if not (List.exists (fun v -> v = Value.Null) key) then (
                  let snapshot = List.map (fun s -> env.(s)) right_slots in
                  charge_snapshot snapshot;
                  out := (key, snapshot) :: !out))
          done;
          List.rev !out)
    in
    let table : Value.t list list Vtbl.t = Vtbl.create 1024 in
    Array.iter
      (List.iter (fun (key, snapshot) ->
           let bucket = try Vtbl.find table key with Not_found -> [] in
           Vtbl.replace table key (snapshot :: bucket)))
      built;
    (* buckets were accumulated newest-first; flip them once so the probe
       streams matches in right-source order, as the sequential probe does *)
    let ordered = Vtbl.create (Vtbl.length table) in
    Vtbl.iter (fun key bucket -> Vtbl.replace ordered key (List.rev bucket)) table;
    (* hash build done: boundary check before the probe phase starts *)
    Governor.checkpoint ~source:"parallel" ();
    let lranges = morsel_ranges lc.n domains in
    let partials =
      Morsel.run ~domains ~tasks:(Array.length lranges) (fun t ->
          let compiled = compile_steps ctx ~slots lc.steps in
          let cpost = compile_steps ctx ~slots post in
          let lkeys = List.map (fun (l, _) -> Compile.scalar ctx ~slots l) keys in
          let cresidual = Option.map (Compile.scalar ctx ~slots) residual in
          let chead = Compile.scalar ctx ~slots head in
          let env = Array.make nslots Value.Null in
          let acc = ref (Monoid.zero monoid) in
          let lo, hi = lranges.(t) in
          for i = lo to hi - 1 do
            Governor.poll ~source:"parallel" ();
            env.(lbase) <- record_of_columns lc.columns i;
            run_steps compiled env (fun () ->
                let key = List.map (fun c -> c env) lkeys in
                if not (List.exists (fun v -> v = Value.Null) key) then
                  match Vtbl.find_opt ordered key with
                  | None -> ()
                  | Some bucket ->
                    List.iter
                      (fun snapshot ->
                        List.iter2
                          (fun s v -> env.(s) <- v)
                          right_slots snapshot;
                        let emit () =
                          run_steps cpost env (fun () ->
                              acc :=
                                Monoid.merge monoid !acc
                                  (Monoid.unit monoid (chead env)))
                        in
                        match cresidual with
                        | None -> emit ()
                        | Some cr -> if Eval.truthy (cr env) then emit ())
                      bucket)
          done;
          !acc)
    in
    Some (Monoid.finalize monoid (merge_partials monoid partials))
  end

(* --- entry point ------------------------------------------------------ *)

(* Peel Select/Map operators above a join/product core, in execution
   order (innermost first) — the translator leaves join predicates as
   Selects above a Product. *)
let rec strip_ops (p : Plan.t) acc =
  match p with
  | Plan.Select { pred; child } -> strip_ops child (Filter pred :: acc)
  | Plan.Map { var; expr; child } -> strip_ops child (Bind (var, expr) :: acc)
  | core -> (core, acc)

let conj = function
  | [] -> None
  | p :: ps ->
    Some (List.fold_left (fun acc q -> Expr.BinOp (Expr.And, acc, q)) p ps)

(* Reduce over a join/product core: resolve both input chains, push
   one-sided filters into them (filters commute with the product — only
   evaluation counts change, never results), conjoin two-sided filters
   into the join predicate for equi-splitting, and keep everything else
   (binds, filters over bind vars) as post-join steps. *)
let try_join_reduce ctx ~domains:budget ~monoid ~head plan ~left ~right steps =
  match (resolve_chain ctx plan left, resolve_chain ctx plan right) with
  | Some lc, Some rc ->
    let lvars = chain_vars lc.var lc.steps and rvars = chain_vars rc.var rc.steps in
    let one_side vars e =
      List.for_all
        (fun v -> List.mem v vars || List.mem_assoc v ctx.Plugins.params)
        (Expr.free_vars e)
    in
    let lpush = ref [] and rpush = ref [] and cross = ref [] and post = ref [] in
    List.iter
      (fun stp ->
        match stp with
        | Filter p when one_side lvars p -> lpush := stp :: !lpush
        | Filter p when one_side rvars p -> rpush := stp :: !rpush
        | Filter p when one_side (lvars @ rvars) p -> cross := p :: !cross
        | stp -> post := stp :: !post)
      steps;
    (match conj (List.rev !cross) with
    | None ->
      note_decline ~where:"join core"
        "no cross-side equi-conjunct to build a hash table on";
      None
    | Some pred ->
      let lc' = { lc with steps = lc.steps @ List.rev !lpush } in
      let rc' = { rc with steps = rc.steps @ List.rev !rpush } in
      (* the pushdown is a plan-shape rewrite: report it to the verifier
         hook in the same Product+Select form the translator uses *)
      (if !lpush <> [] || !rpush <> [] then
         let rebuild l r rest =
           List.fold_left plan_of_step
             (Plan.Product { left = plan_of_chain l; right = plan_of_chain r })
             rest
         in
         let before = rebuild lc rc steps in
         let after =
           rebuild lc' rc'
             (List.map (fun p -> Filter p) (List.rev !cross) @ List.rev !post)
         in
         !checker ~rule:"parallel-filter-pushdown" ~before ~after);
      let lc = lc' and rc = rc' in
      let domains = Morsel.domains_for_rows ~domains:budget (lc.n + rc.n) in
      if domains <= 1 then None
      else
        join_reduce ctx ~domains ~monoid ~head ~pred ~post:(List.rev !post) lc rc)
  | _ -> None

let try_query ctx ?domains (plan : Plan.t) : Value.t option =
  declines := [];
  let budget =
    match domains with Some d -> max 1 d | None -> ctx.Plugins.domains
  in
  if budget <= 1 then None
  else
    match plan with
    | Plan.Reduce { monoid; head; child } -> (
      (* [count v] where [v] is a generator variable counts one per row —
         generator bindings are records, never [Null], so count's
         NULL-skipping cannot fire. Neutralizing the head before needs
         analysis keeps [count r] over a hierarchical source from
         demanding whole objects. (Map-bound vars can be [Null] and must
         keep their head: sequential count skips them.) *)
      let rec source_vars p acc =
        match p with
        | Plan.Source { var; _ } -> var :: acc
        | Plan.Select { child; _ } | Plan.Map { child; _ } ->
          source_vars child acc
        | Plan.Join { left; right; _ } | Plan.Product { left; right } ->
          source_vars left (source_vars right acc)
        | _ -> acc
      in
      let head, plan =
        match (monoid, head) with
        | Monoid.Prim Monoid.Count, Expr.Var v
          when List.mem v (source_vars child []) ->
          let h = Expr.Const (Value.Int 0) in
          let plan' = Plan.Reduce { monoid; head = h; child } in
          !checker ~rule:"parallel-neutralize-count-head" ~before:plan
            ~after:plan';
          (h, plan')
        | _ -> (head, plan)
      in
      match resolve_chain ctx plan child with
      | Some c ->
        if
          not
            (scoped ctx
               ~bound:(chain_vars c.var c.steps)
               ~where:"fold head" head)
        then None
        else
          let domains = Morsel.domains_for_rows ~domains:budget c.n in
          if domains <= 1 then None
          else Some (fold_chain ctx ~domains ~monoid ~head c)
      | None -> (
        match strip_ops child [] with
        | Plan.Join { pred; left; right }, steps ->
          try_join_reduce ctx ~domains:budget ~monoid ~head plan ~left ~right
            (Filter pred :: steps)
        | Plan.Product { left; right }, steps ->
          try_join_reduce ctx ~domains:budget ~monoid ~head plan ~left ~right steps
        | _ -> None))
    | p -> (
      (* bare chain output carries every binder's whole record *)
      match resolve_chain ctx ~whole:true p p with
      | None -> None
      | Some c ->
        let domains = Morsel.domains_for_rows ~domains:budget c.n in
        if domains <= 1 then None
        else Some (materialize_chain ctx ~domains c))
