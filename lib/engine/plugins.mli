(** Input plugins (paper §4.1, Figure 3).

    Every operator obtains its inputs through a file-format-specific input
    plugin. A plugin is {e generated per query}: it receives the fields the
    query needs ({!Analysis.need}) and produces a push-stream of exactly
    those bindings, reading through the source's auxiliary structures and
    ViDa's caches:

    - CSV: positional-map navigation; decoded columns cached per attribute.
    - JSON lines: semi-index field extraction; parsed field columns cached
      per attribute; whole objects cached in compact VBSON.
    - Binary arrays: direct-offset cell access; only needed fields read.
    - Inline collections and arbitrary source expressions: generic
      interpreter fallback.

    A fully-cached source never touches the raw file — the hot path behind
    the paper's "~80% of the workload was served from ViDa's caches". *)

type ctx = {
  registry : Vida_catalog.Registry.t;
  cache : Vida_storage.Cache.t;
  structures : Structures.t;
  params : (string * Vida_data.Value.t) list;
      (** extra free-variable bindings for queries *)
  cleaning : (string, Vida_cleaning.Policy.t) Hashtbl.t;
      (** per-source cleaning policies (paper §7); absent = Strict *)
  bad_rows : (string, (int, unit) Hashtbl.t) Hashtbl.t;
      (** per-source "problematic entries" discovered on first access and
          skipped by subsequently generated code (paper §7) *)
  structural_quarantined : (string, unit) Hashtbl.t;
      (** sources whose structurally-bad spans were already copied into the
          policy quarantine report (one-shot, per source) *)
  restored_quarantine :
    (string, Vida_cleaning.Policy.quarantine_entry list) Hashtbl.t;
      (** quarantine entries restored from a state directory, merged into
          {!quarantine_report} so the ledger survives restarts *)
  feedback : Feedback.t;
      (** observed selectivities/cardinalities from past executions,
          consulted by the optimizer (paper §5 runtime feedback) *)
  domains : int;
      (** domain budget for parallel regions (morsel-driven folds, chunked
          auxiliary-structure builds); 1 = strictly sequential *)
  lock : Vida_sync.Lock.t;
      (** guards the mutable policy/bad-row tables under concurrent
          sessions (the registry, cache, structures and feedback carry
          their own locks). Per-row probes of a fetched bad set stay
          unlocked by design; that tolerance is registered with the
          sanitizer as the race-allowed cell ["plugins.bad-rows"]
          (see DESIGN.md §14) instead of prose *)
}

(** [create_ctx ?domains] resolves the domain budget as
    {!Vida_raw.Morsel.resolve}: the [VIDA_DOMAINS] environment override
    wins, else [domains] clamped to the hardware count, else the hardware
    count. *)
val create_ctx :
  ?cache_capacity:int -> ?params:(string * Vida_data.Value.t) list ->
  ?domains:int -> Vida_catalog.Registry.t -> ctx

exception Engine_error of string

(** [producer ctx expr ~need] compiles an input plugin for the source
    expression [expr] (usually a registered source name). The returned
    function pushes every element to its consumer. Elements are records of
    exactly the needed fields when [need] is [Fields] (missing fields bind
    [Null]). *)
val producer :
  ctx -> Vida_calculus.Expr.t -> need:Analysis.need ->
  (Vida_data.Value.t -> unit) -> unit

(** [binarray_ranged_producer ctx source ~need ~ranges] scans a binary
    array using its zone maps to skip blocks that cannot satisfy the given
    per-field numeric ranges (a conservative superset — callers re-apply
    the exact predicate). *)
val binarray_ranged_producer :
  ctx -> Vida_catalog.Source.t -> Analysis.need ->
  ranges:(string * float option * float option) list ->
  (Vida_data.Value.t -> unit) -> unit

(** [column_arrays ctx source ~fields] is a columnar view (row count plus
    one decoded array per field) for formats that support it, through the
    ordinary caches — [None] for hierarchical formats or when a cleaning
    policy is skipping rows. *)
val column_arrays :
  ctx -> Vida_catalog.Source.t -> fields:string list ->
  (int * (string * Vida_data.Value.t array) list) option

(** [source_count ctx source] is the element count without materializing
    values (row/object/cell count; used by the optimizer). *)
val source_count : ctx -> Vida_catalog.Source.t -> int

(** [materialize_source ctx source] is the source's full collection value —
    the generic fallback and the baseline loaders' entry point. *)
val materialize_source : ctx -> Vida_catalog.Source.t -> Vida_data.Value.t

(** [base_eval_env ctx] is the interpreter environment resolving parameters
    and registered sources (file sources materialize lazily on first use —
    only queries that escape the plugin fast-paths pay this). *)
val base_eval_env : ctx -> Vida_calculus.Eval.env

(** [invalidate ctx name] drops the source's caches, structures and
    problematic-entry set, and re-snapshots it (called when staleness is
    detected). *)
val invalidate : ctx -> string -> unit

(** [refresh_source ctx source] brings a source's derived state up to
    date with its backing file, classifying the change with
    {!Vida_raw.Delta}:
    - [`Unchanged] — content fingerprint matches (an mtime-only drift
      just re-snapshots the registry);
    - [`Extended] — the file grew by append: built structures are
      extended in place ({!Structures.repair_appended}) and cached
      columns are extended with the appended items and re-stamped with
      the new fingerprint. Sources under a cleaning policy, rows already
      marked problematic, parse failures in the appended bytes, or
      unrecognized payload shapes fall back to dropping the caches (the
      structures stay extended);
    - [`Rebuilt] — rewritten/truncated/vanished, or no structures built
      yet and the snapshot drifted: full {!invalidate} (paper §2.1). *)
val refresh_source :
  ctx -> Vida_catalog.Source.t -> [ `Unchanged | `Extended | `Rebuilt ]

(** [set_cleaning ctx ~source policy] attaches a cleaning policy; the
    source's caches are dropped so already-decoded columns are re-read
    under the new policy. *)
val set_cleaning : ctx -> source:string -> Vida_cleaning.Policy.t -> unit

(** [cleaning_policy ctx source] — the active policy ([Policy.default]
    when none was set). *)
val cleaning_policy : ctx -> string -> Vida_cleaning.Policy.t

(** [bad_row_count ctx source] — problematic entries discovered so far. *)
val bad_row_count : ctx -> string -> int

(** [quarantine_report ctx source] — raw spans quarantined for [source]
    so far (populated only under a [Quarantine] cleaning policy): source
    name, byte offset/length into the raw file, and the reason each record
    was rejected. *)
val quarantine_report :
  ctx -> string -> Vida_cleaning.Policy.quarantine_entry list

(** {1 Durable quarantine ledger}

    Export/restore of what cleaning has learned about a source — bad
    rows, wholesale structural quarantine, rejected raw spans — so a
    state directory can carry the ledger across restarts. Staleness is
    the caller's contract: restore only under a matching source-file
    fingerprint. A restored ledger is dropped like a live one on
    {!set_cleaning} or {!invalidate}. *)

(** [(bad rows, structurally quarantined, quarantine entries)]. *)
val ledger_export :
  ctx -> string -> int list * bool * Vida_cleaning.Policy.quarantine_entry list

val ledger_restore :
  ctx -> source:string -> bad:int list -> structural:bool ->
  quarantined:Vida_cleaning.Policy.quarantine_entry list -> unit
