(** Per-source auxiliary structure registry.

    Holds the lazily-built raw-file structures — raw buffers, positional
    maps, semi-indexes, binary-array handles — shared by every query of a
    session. Invalidation drops a source's structures (paper §2.1: updates
    to underlying files result in dropping the affected auxiliary
    structures). *)

type t

val create : unit -> t

(** Each accessor builds the structure on first request (registering the
    build cost with {!Vida_raw.Io_stats}) and memoizes it.
    @raise Vida_error.Error ([Invalid_request]) when the source's format
    does not match. *)
val buffer : t -> Vida_catalog.Source.t -> Vida_raw.Raw_buffer.t

(** [posmap]/[semi_index] additionally accept [?domains]: a cold build of
    the structure is chunked across that many domains (see
    {!Vida_raw.Positional_map.build}); a sidecar restore or memo hit
    ignores it. *)
val posmap : ?domains:int -> t -> Vida_catalog.Source.t -> Vida_raw.Positional_map.t

val semi_index : ?domains:int -> t -> Vida_catalog.Source.t -> Vida_raw.Semi_index.t
val xml_index : t -> Vida_catalog.Source.t -> Vida_raw.Xml_index.t
val binarray : t -> Vida_catalog.Source.t -> Vida_raw.Binarray.t

(** [checkpoint_posmap t source] persists a built positional map to the
    source's sidecar file ([<data path>.vidx], or the state directory's
    [structures/] when one is set); the next session restores it without
    re-scanning, as long as the data file is unchanged. Returns false
    when no map has been built.
    @raise Vida_error.Error ([State_failure]) on an OS write failure. *)
val checkpoint_posmap : t -> Vida_catalog.Source.t -> bool

(** {1 State-directory integration} *)

(** [set_sidecar_dir t dir] routes all sidecar IO (restore and
    checkpoint) to [dir/<md5(data path)>.vidx] instead of beside the
    data — read-only data directories still get warm restarts. Set
    before the first structure build. *)
val set_sidecar_dir : t -> string -> unit

(** [sidecar_digest source] is the filename stem a state directory keys
    this source's sidecar under. *)
val sidecar_digest : Vida_catalog.Source.t -> string

(** positional maps restored from a sidecar / built from raw since
    {!create} — the warm-boot reuse proof reads these. *)
val warm_restores : t -> int

val rebuilds : t -> int

(** [peek_buffer]/[peek_posmap]/[peek_semi_index] return an already-built
    structure without building one — cost estimation and change detection
    must not trigger file scans. *)
val peek_buffer : t -> string -> Vida_raw.Raw_buffer.t option

val peek_posmap : t -> string -> Vida_raw.Positional_map.t option

val peek_semi_index : t -> string -> Vida_raw.Semi_index.t option

(** {1 Append-aware incremental repair} *)

type repair = {
  new_buffer : Vida_raw.Raw_buffer.t;
  csv : (Vida_raw.Positional_map.t * int) option;
      (** extended map, old row count *)
  json : (Vida_raw.Semi_index.t * int) option;
      (** extended index, old object count *)
  xml : (Vida_raw.Xml_index.t * int * bool) option;
      (** extended index, old element count, [true] when a new repeated
          tag appeared among appended elements (the normalized shape of
          old elements changed — element-derived caches must be dropped) *)
}

(** [repair_appended t source] reacts to [source]'s file having grown by
    append ({!Vida_raw.Delta.Appended}): the memoized buffer is replaced
    by a freshly loaded one and every built structure is {e extended}
    from the old tail instead of rebuilt ({!Vida_raw.Positional_map.extend}
    and friends); binary-array handles are dropped (re-opening is a header
    parse). Returns the new buffer plus old item counts so the engine can
    extend cached columns as well. Caller is responsible for having
    classified the change as an append. *)
val repair_appended : t -> Vida_catalog.Source.t -> repair

(** [invalidate t name] drops every structure of source [name]. *)
val invalidate : t -> string -> unit

(** [footprint t] is the approximate memory held by index structures. *)
val footprint : t -> int
