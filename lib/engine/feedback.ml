(* concurrent sessions record observations from many domains at once *)
type t = { table : (string, float) Hashtbl.t; lock : Vida_sync.Lock.t }

let create () =
  { table = Hashtbl.create 64;
    lock = Vida_sync.Lock.create ~rank:60 ~name:"engine.feedback" () }

let locked t f = Vida_sync.Lock.protect t.lock f

let record t ~key ~observed =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> Hashtbl.replace t.table key observed
      | Some prev -> Hashtbl.replace t.table key ((prev +. observed) /. 2.))

let lookup t ~key = locked t (fun () -> Hashtbl.find_opt t.table key)
let entries t = locked t (fun () -> Hashtbl.length t.table)
let clear t = locked t (fun () -> Hashtbl.reset t.table)

let selectivity_key pred = "sel|" ^ Vida_calculus.Expr.to_string pred
let join_key pred = "join|" ^ Vida_calculus.Expr.to_string pred
let cardinality_key name = "card|" ^ name
