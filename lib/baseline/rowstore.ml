open Vida_data
open Vida_storage

let attribute_limit = 250
let page_size = 8192

(* One vertical partition: a subset of attributes, tuples serialized into
   heap pages as concatenated VBSON values (arity known from the partition
   schema), row order shared across partitions. *)
type partition = {
  pschema : Schema.t;
  mutable closed : string list;  (* full pages, reverse order *)
  current : Buffer.t;
}

type table = {
  schema : Schema.t;
  parts : partition array;
  (* which partition and position within it each attribute lives at *)
  locate : (string * int * int) array;  (* attr name, partition, index *)
  mutable nrows : int;
}

type t = { tables : (string, table) Hashtbl.t }

let create () = { tables = Hashtbl.create 8 }

let chunk l n =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let create_table t ~name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Rowstore: table %S exists" name);
  let chunks = chunk (Schema.attributes schema) attribute_limit in
  let chunks = if chunks = [] then [ [] ] else chunks in
  let parts =
    Array.of_list
      (List.map
         (fun attrs ->
           { pschema = Schema.make attrs; closed = []; current = Buffer.create page_size })
         chunks)
  in
  let locate =
    Array.of_list
      (List.concat
         (List.mapi
            (fun p attrs -> List.mapi (fun i a -> (a.Schema.name, p, i)) attrs)
            chunks))
  in
  Hashtbl.replace t.tables name { schema; parts; locate; nrows = 0 }

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Rowstore: no table %S" name)

let insert t ~name tuple =
  let tbl = table t name in
  if Array.length tuple <> Schema.arity tbl.schema then
    invalid_arg "Rowstore.insert: arity mismatch";
  let offset = ref 0 in
  Array.iter
    (fun part ->
      let arity = Schema.arity part.pschema in
      let payload = Buffer.create 64 in
      for i = 0 to arity - 1 do
        Buffer.add_string payload (Vbson.encode tuple.(!offset + i))
      done;
      offset := !offset + arity;
      let payload = Buffer.contents payload in
      (* tuple header: u32 length (tuples can exceed 64 KB, e.g. flattened
         JSON text columns) *)
      if Buffer.length part.current + String.length payload + 4 > page_size
         && Buffer.length part.current > 0
      then (
        part.closed <- Buffer.contents part.current :: part.closed;
        Buffer.clear part.current);
      let len = String.length payload in
      for shift = 0 to 3 do
        Buffer.add_char part.current (Char.chr ((len lsr (8 * shift)) land 0xFF))
      done;
      Buffer.add_string part.current payload)
    tbl.parts;
  tbl.nrows <- tbl.nrows + 1

let row_count t ~name = (table t name).nrows
let table_schema t ~name = (table t name).schema
let partitions t ~name = Array.length (table t name).parts
let tables t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []

let storage_bytes t =
  Hashtbl.fold
    (fun _ tbl acc ->
      Array.fold_left
        (fun acc part ->
          List.fold_left (fun acc p -> acc + String.length p) acc part.closed
          + Buffer.length part.current)
        acc tbl.parts)
    t.tables 0

(* Iterate a partition's tuples in row order, calling [f] with the decoded
   values. *)
let iter_partition part f =
  let arity = Schema.arity part.pschema in
  let scan_page page =
    let n = String.length page in
    let pos = ref 0 in
    while !pos < n do
      let len =
        Char.code page.[!pos]
        lor (Char.code page.[!pos + 1] lsl 8)
        lor (Char.code page.[!pos + 2] lsl 16)
        lor (Char.code page.[!pos + 3] lsl 24)
      in
      let payload_start = !pos + 4 in
      let values = Array.make arity Value.Null in
      let vpos = ref payload_start in
      for i = 0 to arity - 1 do
        let v, next = Vbson.decode_prefix page ~pos:!vpos in
        values.(i) <- v;
        vpos := next
      done;
      f values;
      pos := payload_start + len
    done
  in
  List.iter scan_page (List.rev part.closed);
  if Buffer.length part.current > 0 then scan_page (Buffer.contents part.current)

let scan t ~name ~fields f =
  let tbl = table t name in
  let wanted =
    match fields with
    | None -> Schema.names tbl.schema
    | Some fs -> fs
  in
  (* partitions holding at least one wanted attribute are read whole
     (row-store behaviour: you pay for the full partition row) *)
  let located =
    List.filter_map
      (fun fname ->
        Array.find_opt (fun (n, _, _) -> String.equal n fname) tbl.locate)
      wanted
  in
  let part_ids = List.sort_uniq compare (List.map (fun (_, p, _) -> p) located) in
  match part_ids with
  | [] ->
    (* no known attribute: emit empty records *)
    for _ = 1 to tbl.nrows do
      f (Value.Record (List.map (fun fname -> (fname, Value.Null)) wanted))
    done
  | part_ids ->
    (* materialize each needed partition column-of-tuples, then zip *)
    let decoded =
      List.map
        (fun p ->
          let rows = Array.make tbl.nrows [||] in
          let i = ref 0 in
          iter_partition tbl.parts.(p) (fun values ->
              rows.(!i) <- values;
              incr i);
          (p, rows))
        part_ids
    in
    for row = 0 to tbl.nrows - 1 do
      let fields_out =
        List.map
          (fun fname ->
            match Array.find_opt (fun (n, _, _) -> String.equal n fname) tbl.locate with
            | None -> (fname, Value.Null)
            | Some (_, p, i) -> (fname, (List.assoc p decoded).(row).(i)))
          wanted
      in
      f (Value.Record fields_out)
    done

let run t plan =
  let resolve name ~need consumer =
    let fields =
      match need with
      | Vida_engine.Analysis.Whole -> None
      | Vida_engine.Analysis.Fields fs -> Some fs
    in
    scan t ~name ~fields consumer
  in
  Plan_interp.run ~resolve plan
