open Vida_calculus
open Vida_algebra

let rec conjuncts (e : Expr.t) =
  match e with
  | Expr.BinOp (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Expr.bool true
  | first :: rest ->
    List.fold_left (fun acc c -> Expr.BinOp (Expr.And, acc, c)) first rest

let subset vars allowed = List.for_all (fun v -> List.mem v allowed) vars

type rule = { name : string; rewrite : Plan.t -> Plan.t option }

(* Each rule is one local rewrite attempt at the root of a subtree. *)

let select_true_elim (p : Plan.t) =
  match p with
  | Plan.Select { pred = Expr.Const (Vida_data.Value.Bool true); child } -> Some child
  | _ -> None

let select_split_conjunction (p : Plan.t) =
  match p with
  | Plan.Select { pred = Expr.BinOp (Expr.And, a, b); child } ->
    Some (Plan.Select { pred = a; child = Plan.Select { pred = b; child } })
  | _ -> None

let select_past_map (p : Plan.t) =
  match p with
  | Plan.Select { pred; child = Plan.Map ({ var; _ } as m) }
    when not (List.mem var (Expr.free_vars pred)) ->
    Some (Plan.Map { m with child = Plan.Select { pred; child = m.child } })
  | _ -> None

let select_past_unnest (p : Plan.t) =
  match p with
  | Plan.Select { pred; child = Plan.Unnest ({ var; _ } as u) }
    when not (List.mem var (Expr.free_vars pred)) ->
    Some (Plan.Unnest { u with child = Plan.Select { pred; child = u.child } })
  | _ -> None

let select_into_product (p : Plan.t) =
  match p with
  | Plan.Select { pred; child = Plan.Product { left; right } } ->
    let fv = Expr.free_vars pred in
    let lvars = Plan.bound_vars left and rvars = Plan.bound_vars right in
    if subset fv lvars then
      Some (Plan.Product { left = Plan.Select { pred; child = left }; right })
    else if subset fv rvars then
      Some (Plan.Product { left; right = Plan.Select { pred; child = right } })
    else Some (Plan.Join { pred; left; right })
  | _ -> None

let select_into_join (p : Plan.t) =
  match p with
  | Plan.Select { pred; child = Plan.Join ({ left; right; _ } as j) } ->
    let fv = Expr.free_vars pred in
    let lvars = Plan.bound_vars left and rvars = Plan.bound_vars right in
    if subset fv lvars then
      Some (Plan.Join { j with left = Plan.Select { pred; child = left } })
    else if subset fv rvars then
      Some (Plan.Join { j with right = Plan.Select { pred; child = right } })
    else Some (Plan.Join { j with pred = conjoin (conjuncts j.pred @ [ pred ]) })
  | _ -> None

let product_unit_elim (p : Plan.t) =
  match p with
  | Plan.Product { left = Plan.Unit; right } -> Some right
  | Plan.Product { left; right = Plan.Unit } -> Some left
  | _ -> None

let builtin_rules =
  [ { name = "select-true-elim"; rewrite = select_true_elim };
    { name = "select-split-conjunction"; rewrite = select_split_conjunction };
    { name = "select-past-map"; rewrite = select_past_map };
    { name = "select-past-unnest"; rewrite = select_past_unnest };
    { name = "select-into-product"; rewrite = select_into_product };
    { name = "select-into-join"; rewrite = select_into_join };
    { name = "product-unit-elim"; rewrite = product_unit_elim } ]

let extra_rules : rule list ref = ref []

let checker :
    (rule:string -> before:Plan.t -> after:Plan.t -> unit) ref =
  ref (fun ~rule:_ ~before:_ ~after:_ -> ())

let with_checker f body =
  let saved = !checker in
  checker := f;
  Fun.protect ~finally:(fun () -> checker := saved) body

(* One rewrite attempt at the root: first applicable rule wins. Every
   firing is reported to [checker] with the rule named — a subtree is
   closed over its own binders (the algebra binds bottom-up), so it can be
   verified in isolation. *)
let rewrite_root (p : Plan.t) : Plan.t option =
  let rec try_rules = function
    | [] -> None
    | r :: rest -> (
      match r.rewrite p with
      | None -> try_rules rest
      | Some p' ->
        !checker ~rule:r.name ~before:p ~after:p';
        Some p')
  in
  try_rules (builtin_rules @ !extra_rules)

let rec fixpoint_root p n =
  if n = 0 then p
  else
    match rewrite_root p with
    | Some p' -> fixpoint_root p' (n - 1)
    | None -> p

let rec pass p =
  let p = fixpoint_root p 32 in
  Plan.map_children pass p

let apply p =
  (* a pushed-down selection can enable further pushdown below it: iterate
     whole-tree passes to a (bounded) fixpoint *)
  let rec go p n =
    if n = 0 then p
    else
      let p' = pass p in
      if Plan.equal p' p then p else go p' (n - 1)
  in
  go p 16
