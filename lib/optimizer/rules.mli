(** Logical plan rewrites.

    Classical algebraic rewrites, run to fixpoint:
    - conjunctive selections split into single-conjunct selections;
    - selections pushed below maps, unnests, products and joins, down to
      the side that binds their variables;
    - a selection spanning both sides of a product turns it into a join
      (hash-joinable predicates are recognized later, at compile time);
    - unit products and trivially-true selections eliminated.

    Rewrites are semantics-preserving on environment streams; the
    differential test-suite checks them against the reference executor,
    and every individual firing can additionally be checked by the plan
    verifier through {!checker} — each rule is named, so a type-breaking
    firing is reported against the rule that produced it. *)

(** One named local rewrite. [rewrite] returns [None] when the rule does
    not apply at this root. *)
type rule = { name : string; rewrite : Vida_algebra.Plan.t -> Vida_algebra.Plan.t option }

(** The built-in rule set, in application order. *)
val builtin_rules : rule list

(** Extra rules appended after the built-ins — the mutation hook the
    verifier test-suite uses to seed type-breaking rules. Empty by
    default; reset it when done. *)
val extra_rules : rule list ref

(** Per-firing observation hook: called as [checker ~rule ~before ~after]
    for every successful rule application ([before] the subtree it fired
    on, [after] its replacement). The default is a no-op; installing the
    plan verifier here turns every optimizer step into checked territory.
    May raise (e.g. {!Vida_error.Error}) to abort the rewrite. *)
val checker :
  (rule:string -> before:Vida_algebra.Plan.t -> after:Vida_algebra.Plan.t -> unit) ref

(** [with_checker f body] installs [f] for the duration of [body]
    (exception-safe, restores the previous hook). *)
val with_checker :
  (rule:string -> before:Vida_algebra.Plan.t -> after:Vida_algebra.Plan.t -> unit) ->
  (unit -> 'a) -> 'a

val apply : Vida_algebra.Plan.t -> Vida_algebra.Plan.t

(** [conjuncts e] splits nested conjunctions into a flat list. *)
val conjuncts : Vida_calculus.Expr.t -> Vida_calculus.Expr.t list

(** [conjoin es] rebuilds a conjunction ([true] for the empty list). *)
val conjoin : Vida_calculus.Expr.t list -> Vida_calculus.Expr.t
