open Vida_calculus
open Vida_algebra

type report = {
  before : Cost.estimate;
  after : Cost.estimate;
  rewritten : Plan.t;
}

(* --- decomposition of the stream part into a dependency graph --- *)

type item =
  | ISource of { var : string; expr : Expr.t }
  | IUnnest of { var : string; path : Expr.t; outer : bool }
  | IMap of { var : string; expr : Expr.t }

let item_var = function
  | ISource { var; _ } | IUnnest { var; _ } | IMap { var; _ } -> var

let item_expr = function
  | ISource { expr; _ } -> expr
  | IUnnest { path; _ } -> path
  | IMap { expr; _ } -> expr

exception Unsupported

(* Flatten a stream plan into items + predicate conjuncts; raises
   [Unsupported] on shapes the greedy builder does not handle. *)
let rec decompose (p : Plan.t) : item list * Expr.t list =
  match p with
  | Plan.Unit -> ([], [])
  | Plan.Source { var; expr } -> ([ ISource { var; expr } ], [])
  | Plan.Select { pred; child } ->
    let items, preds = decompose child in
    (items, preds @ Rules.conjuncts pred)
  | Plan.Map { var; expr; child } ->
    let items, preds = decompose child in
    (items @ [ IMap { var; expr } ], preds)
  | Plan.Unnest { var; path; outer; child } ->
    let items, preds = decompose child in
    (items @ [ IUnnest { var; path; outer } ], preds)
  | Plan.Product { left; right } ->
    let li, lp = decompose left and ri, rp = decompose right in
    (li @ ri, lp @ rp)
  | Plan.Join { pred; left; right } ->
    let li, lp = decompose left and ri, rp = decompose right in
    (li @ ri, lp @ rp @ Rules.conjuncts pred)
  | Plan.Reduce _ | Plan.Nest _ -> raise Unsupported

(* --- greedy reconstruction --- *)

let attach placed item =
  match item, placed with
  | ISource { var; expr }, None -> Plan.Source { var; expr }
  | ISource { var; expr }, Some p ->
    Plan.Product { left = p; right = Plan.Source { var; expr } }
  | IUnnest { var; path; outer }, Some p ->
    Plan.Unnest { var; path; outer; child = p }
  | IUnnest { var; path; outer }, None ->
    Plan.Unnest { var; path; outer; child = Plan.Unit }
  | IMap { var; expr }, Some p -> Plan.Map { var; expr; child = p }
  | IMap { var; expr }, None -> Plan.Map { var; expr; child = Plan.Unit }

let apply_preds plan preds =
  List.fold_left (fun plan pred -> Plan.Select { pred; child = plan }) plan preds

let greedy ctx items preds =
  let all_vars = List.map item_var items in
  let deps item =
    List.filter
      (fun v -> List.mem v all_vars && not (String.equal v (item_var item)))
      (Expr.free_vars (item_expr item))
  in
  let pred_ready bound pred =
    List.for_all (fun v -> (not (List.mem v all_vars)) || List.mem v bound)
      (Expr.free_vars pred)
  in
  let rec build placed bound remaining preds =
    match remaining with
    | [] -> apply_preds (Option.value placed ~default:Plan.Unit) preds
    | _ ->
      let ready =
        List.filter (fun it -> List.for_all (fun d -> List.mem d bound) (deps it)) remaining
      in
      let candidates = if ready = [] then [ List.hd remaining ] else ready in
      let score item =
        let bound' = item_var item :: bound in
        let satisfied, _ = List.partition (pred_ready bound') preds in
        let trial = Rules.apply (apply_preds (attach placed item) satisfied) in
        let est = Cost.estimate ctx trial in
        est.Cost.cost +. est.Cost.cardinality
      in
      let best =
        List.fold_left
          (fun acc item ->
            let s = score item in
            match acc with
            | Some (_, best_s) when best_s <= s -> acc
            | _ -> Some (item, s))
          None candidates
      in
      let item, _ = Option.get best in
      let bound = item_var item :: bound in
      let satisfied, rest = List.partition (pred_ready bound) preds in
      let placed = Some (apply_preds (attach placed item) satisfied) in
      build placed bound (List.filter (fun it -> it != item) remaining) rest
  in
  build None [] items preds

(* swap hash-join sides so the smaller estimated input is built *)
let rec choose_build_sides ctx (p : Plan.t) =
  let p = Plan.map_children (choose_build_sides ctx) p in
  match p with
  | Plan.Join ({ left; right; _ } as j) ->
    let l = Cost.estimate ctx left and r = Cost.estimate ctx right in
    if r.Cost.cardinality > l.Cost.cardinality *. 1.5 then (
      let p' = Plan.Join { j with left = right; right = left } in
      !Rules.checker ~rule:"join-build-side-swap" ~before:p ~after:p';
      p')
    else p
  | p -> p

let optimize_stream ctx (p : Plan.t) =
  match decompose p with
  | items, preds -> choose_build_sides ctx (Rules.apply (greedy ctx items preds))
  | exception Unsupported -> choose_build_sides ctx (Rules.apply p)

let optimize ctx (p : Plan.t) =
  (* grouping recognition first: the correlated group-by idiom becomes a
     single Nest pass, then its input stream is ordered as usual *)
  match Groupby.rewrite p with
  | Some (Plan.Reduce ({ child = Plan.Nest n; _ } as r) as nested) ->
    !Rules.checker ~rule:"groupby-nest" ~before:p ~after:nested;
    Plan.Reduce
      { r with child = Plan.Nest { n with child = optimize_stream ctx n.child } }
  | Some p' ->
    !Rules.checker ~rule:"groupby-nest" ~before:p ~after:p';
    p'
  | None -> (
    match p with
    | Plan.Reduce r -> Plan.Reduce { r with child = optimize_stream ctx r.child }
    | Plan.Nest n -> Plan.Nest { n with child = optimize_stream ctx n.child }
    | p -> optimize_stream ctx p)

let optimize_with_report ctx p =
  let before = Cost.estimate ctx p in
  let rewritten = optimize ctx p in
  let after = Cost.estimate ctx rewritten in
  (rewritten, { before; after; rewritten })
