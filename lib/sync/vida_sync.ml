(* Concurrency sanitizer for the multi-domain serving stack.

   Every mutex in lib/ is created through [Lock.create] with a declared
   rank and resource name. With sanitizing off (the default) a lock is a
   plain [Mutex.t] behind one mode-check branch. Under [VIDA_SANITIZE]
   the layer maintains a held-lock stack per (domain, thread), rejects
   rank inversions and same-lock re-entry at acquire time, accumulates a
   process-global acquired-before graph whose cycles are deadlock
   potential, and runs an Eraser-style lockset pass over registered
   shared cells. Server connection threads are systhreads that all share
   domain 0, so stacks are keyed by (domain id, thread id), never by
   domain alone. *)

type mode = Off | Warn | Strict

(* 0 = Off, 1 = Warn, 2 = Strict; an int atomic keeps the off-mode fast
   path to a single load + compare before the plain mutex op. *)
let mode_cell = Atomic.make 0

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "off" -> Off
  | "2" | "strict" -> Strict
  | _ -> Warn

let mode () =
  match Atomic.get mode_cell with 0 -> Off | 1 -> Warn | _ -> Strict

let set_mode m =
  Atomic.set mode_cell (match m with Off -> 0 | Warn -> 1 | Strict -> 2)

let enabled () = Atomic.get mode_cell <> 0
let strict () = Atomic.get mode_cell = 2

(* All sanitizer bookkeeping is serialized under one private mutex. It is
   never held across a user lock acquisition or a condition wait, so it
   cannot itself deadlock against the locks it watches. *)
let meta = Mutex.create ()
let metaed f = Mutex.protect meta f

type finding = { f_kind : string; f_subject : string; f_detail : string }

let max_findings = 100
let findings_rev : finding list ref = ref []
let findings_total = ref 0
let rank_inversions = ref 0
let reentries = ref 0
let cycles = ref 0
let unlocked_accesses = ref 0
let unheld = ref 0
let kernel_failures = ref 0
let kernel_checks = Atomic.make 0
let locks_created = Atomic.make 0

let record_unlocked ~kind ~subject ~detail =
  incr findings_total;
  (match kind with
   | "rank-inversion" -> incr rank_inversions
   | "reentry" -> incr reentries
   | "lock-cycle" -> incr cycles
   | "unlocked-access" -> incr unlocked_accesses
   | "unheld-lock" -> incr unheld
   | "kernel-obligation" -> incr kernel_failures
   | _ -> ());
  if !findings_total <= max_findings then
    findings_rev := { f_kind = kind; f_subject = subject; f_detail = detail }
                    :: !findings_rev

(* [record] files the finding; in strict mode (or when [fatal]) it then
   raises [Vida_error.Sync_violation]. Re-entry and waiting on an unheld
   mutex are fatal even in warn mode: proceeding would deadlock or crash
   the stdlib mutex, which reports nothing. *)
let record ?(fatal = false) ~kind ~subject ~detail () =
  metaed (fun () -> record_unlocked ~kind ~subject ~detail);
  if fatal || strict () then
    Vida_error.sync_violation ~subject ~kind "%s" detail

type lock = { l_rank : int; l_name : string; l_m : Mutex.t }

(* Held-lock stacks, keyed by (domain id, thread id), top of stack first.
   Entries are pushed after a successful acquire and removed (first
   physical occurrence) on release. *)
let held : (int * int, lock list) Hashtbl.t = Hashtbl.create 64

let self_key () =
  ((Domain.self () :> int), Thread.id (Thread.self ()))

let held_stack_unlocked key =
  match Hashtbl.find_opt held key with Some s -> s | None -> []

let stack_names stack = String.concat " > " (List.map (fun l -> l.l_name) stack)

(* Acquired-before graph over lock names: an edge a -> b means some
   thread acquired b while holding a. Each edge remembers the held stack
   that first established it, so a cycle report can name both orders. *)
let edges : (string, string list ref) Hashtbl.t = Hashtbl.create 64
let edge_stacks : (string * string, string) Hashtbl.t = Hashtbl.create 64

let successors_unlocked name =
  match Hashtbl.find_opt edges name with Some l -> !l | None -> []

(* Depth-first path from [src] to [dst] in the acquired-before graph. *)
let find_path_unlocked src dst =
  let seen = Hashtbl.create 16 in
  let rec go node path =
    if node = dst then Some (List.rev (node :: path))
    else if Hashtbl.mem seen node then None
    else begin
      Hashtbl.add seen node ();
      let rec first = function
        | [] -> None
        | next :: rest ->
          (match go next (node :: path) with
           | Some _ as p -> p
           | None -> first rest)
      in
      first (successors_unlocked node)
    end
  in
  go src []

let add_edge_unlocked ~src ~dst ~stack =
  let succs =
    match Hashtbl.find_opt edges src with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add edges src l;
      l
  in
  if not (List.mem dst !succs) then begin
    (* Before committing src -> dst, look for an established dst ->* src
       order: finding one means the two orders can deadlock. *)
    let cycle =
      match find_path_unlocked dst src with
      | Some path ->
        let prior =
          match Hashtbl.find_opt edge_stacks (dst, List.nth_opt path 1 |> Option.value ~default:src) with
          | Some s -> s
          | None -> dst
        in
        Some
          (Printf.sprintf
             "acquiring %s while holding [%s] contradicts established order %s (first seen holding [%s])"
             dst stack
             (String.concat " -> " path)
             prior)
      | None -> None
    in
    succs := dst :: !succs;
    Hashtbl.replace edge_stacks (src, dst) stack;
    cycle
  end
  else None

module Lock = struct
  type t = lock

  let create ~rank ~name () =
    Atomic.incr locks_created;
    { l_rank = rank; l_name = name; l_m = Mutex.create () }

  let name t = t.l_name
  let rank t = t.l_rank

  (* Pre-acquire checks run under [meta]; the actual [Mutex.lock] happens
     outside it so a blocked acquire never wedges the sanitizer. Returns
     the deferred violation to raise (strict / fatal) after leaving
     [meta]. *)
  let check_acquire t =
    let key = self_key () in
    metaed (fun () ->
        let stack = held_stack_unlocked key in
        if List.memq t stack then begin
          let detail =
            Printf.sprintf "same-lock re-entry on %s (held: [%s])" t.l_name
              (stack_names stack)
          in
          record_unlocked ~kind:"reentry" ~subject:t.l_name ~detail;
          Some ("reentry", detail, true)
        end
        else begin
          let offender =
            List.fold_left
              (fun acc l ->
                 if l.l_rank >= t.l_rank then
                   match acc with
                   | Some o when o.l_rank >= l.l_rank -> acc
                   | _ -> Some l
                 else acc)
              None stack
          in
          let inversion =
            match offender with
            | Some o ->
              let detail =
                Printf.sprintf
                  "rank inversion: acquiring %s (rank %d) while holding %s (rank %d); held: [%s]"
                  t.l_name t.l_rank o.l_name o.l_rank (stack_names stack)
              in
              record_unlocked ~kind:"rank-inversion" ~subject:t.l_name ~detail;
              Some ("rank-inversion", detail, false)
            | None -> None
          in
          let snapshot = stack_names (t :: stack) in
          List.iter
            (fun h ->
               match add_edge_unlocked ~src:h.l_name ~dst:t.l_name ~stack:snapshot with
               | Some detail ->
                 record_unlocked ~kind:"lock-cycle" ~subject:t.l_name ~detail
               | None -> ())
            stack;
          inversion
        end)

  let lock t =
    if Atomic.get mode_cell = 0 then Mutex.lock t.l_m
    else begin
      (match check_acquire t with
       | Some (kind, detail, fatal) when fatal || strict () ->
         Vida_error.sync_violation ~subject:t.l_name ~kind "%s" detail
       | _ -> ());
      Mutex.lock t.l_m;
      let key = self_key () in
      metaed (fun () ->
          Hashtbl.replace held key (t :: held_stack_unlocked key))
    end

  let remove_first t stack =
    let rec go acc = function
      | [] -> None
      | l :: rest when l == t -> Some (List.rev_append acc rest)
      | l :: rest -> go (l :: acc) rest
    in
    go [] stack

  let unlock t =
    if Atomic.get mode_cell = 0 then Mutex.unlock t.l_m
    else begin
      let key = self_key () in
      let was_held =
        metaed (fun () ->
            match remove_first t (held_stack_unlocked key) with
            | Some rest ->
              if rest = [] then Hashtbl.remove held key
              else Hashtbl.replace held key rest;
              true
            | None -> false)
      in
      if not was_held then
        record ~kind:"unheld-lock" ~subject:t.l_name
          ~detail:(Printf.sprintf "unlock of %s, which this thread does not hold" t.l_name)
          ();
      Mutex.unlock t.l_m
    end

  let protect t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f

  let holds t =
    let key = self_key () in
    metaed (fun () -> List.memq t (held_stack_unlocked key))

  let assert_held t =
    if Atomic.get mode_cell <> 0 && not (holds t) then
      record ~kind:"unheld-lock" ~subject:t.l_name
        ~detail:
          (Printf.sprintf "%s must be held by the caller at this point" t.l_name)
        ()

  (* The lock stays on the held stack across the wait: [Condition.wait]
     releases and reacquires it at the same stack position, so the
     thread's declared discipline is unchanged on wake-up. *)
  let wait cond t =
    if Atomic.get mode_cell <> 0 && not (holds t) then
      record ~fatal:true ~kind:"unheld-lock" ~subject:t.l_name
        ~detail:
          (Printf.sprintf "condition wait on %s, which this thread does not hold"
             t.l_name)
        ();
    Condition.wait cond t.l_m
end

(* Eraser-style lockset pass. Each registered cell keeps the candidate
   lockset: the intersection of lock names held at every access so far.
   An access that empties the set is flagged once, with both the first
   and the current site. [allow_race] is the explicit escape hatch for
   cells whose races are tolerated by design. *)
type cell = {
  c_name : string;
  mutable c_lockset : string list option; (* None until first access *)
  mutable c_allowed : bool;
  mutable c_justification : string;
  mutable c_first_site : string;
  mutable c_flagged : bool;
  mutable c_accesses : int;
}

let cells : (string, cell) Hashtbl.t = Hashtbl.create 32

let cell_unlocked name =
  match Hashtbl.find_opt cells name with
  | Some c -> c
  | None ->
    let c =
      { c_name = name; c_lockset = None; c_allowed = false;
        c_justification = ""; c_first_site = ""; c_flagged = false;
        c_accesses = 0 }
    in
    Hashtbl.add cells name c;
    c

module Cell = struct
  let register ~name = metaed (fun () -> ignore (cell_unlocked name))

  let allow_race ~name ~justification =
    metaed (fun () ->
        let c = cell_unlocked name in
        c.c_allowed <- true;
        c.c_justification <- justification)

  let access what ~name ~site =
    if Atomic.get mode_cell <> 0 then begin
      let key = self_key () in
      let flagged =
        metaed (fun () ->
            let c = cell_unlocked name in
            c.c_accesses <- c.c_accesses + 1;
            if c.c_first_site = "" then c.c_first_site <- site;
            if c.c_allowed then None
            else begin
              let held_names =
                List.map (fun l -> l.l_name) (held_stack_unlocked key)
              in
              let lockset =
                match c.c_lockset with
                | None -> held_names
                | Some ls -> List.filter (fun n -> List.mem n held_names) ls
              in
              c.c_lockset <- Some lockset;
              if lockset = [] && not c.c_flagged then begin
                c.c_flagged <- true;
                let detail =
                  Printf.sprintf
                    "%s of %s with empty candidate lockset at %s (first access at %s)"
                    what name site c.c_first_site
                in
                record_unlocked ~kind:"unlocked-access" ~subject:name ~detail;
                Some detail
              end
              else None
            end)
      in
      match flagged with
      | Some detail when strict () ->
        Vida_error.sync_violation ~subject:name ~kind:"unlocked-access" "%s" detail
      | _ -> ()
    end

  let read ~name ~site = access "read" ~name ~site
  let write ~name ~site = access "write" ~name ~site
end

(* Kernel-safety obligations (lint catalog P08-P10), discharged by the
   vectorized rung on every dispatch in sanitize mode. *)
let note_kernel_check () = Atomic.incr kernel_checks

let kernel_failed ~id ~subject fmt =
  Format.kasprintf
    (fun reason ->
       let detail = Printf.sprintf "%s: %s" id reason in
       record ~kind:"kernel-obligation" ~subject ~detail ())
    fmt

type counters = {
  locks : int;          (** locks created through {!Lock.create} *)
  cells : int;          (** shared cells registered *)
  race_allowed : int;   (** cells registered race-allowed *)
  kernel_checks : int;  (** P08-P10 obligations discharged *)
  rank_inversions : int;
  reentries : int;
  lock_cycles : int;
  unlocked_accesses : int;
  unheld_locks : int;
  kernel_failures : int;
  total : int;          (** all findings, including those past the cap *)
}

let counters () =
  metaed (fun () ->
      let race_allowed =
        Hashtbl.fold (fun _ c n -> if c.c_allowed then n + 1 else n) cells 0
      in
      { locks = Atomic.get locks_created;
        cells = Hashtbl.length cells;
        race_allowed;
        kernel_checks = Atomic.get kernel_checks;
        rank_inversions = !rank_inversions;
        reentries = !reentries;
        lock_cycles = !cycles;
        unlocked_accesses = !unlocked_accesses;
        unheld_locks = !unheld;
        kernel_failures = !kernel_failures;
        total = !findings_total })

let findings () = metaed (fun () -> List.rev !findings_rev)

let reset () =
  metaed (fun () ->
      findings_rev := [];
      findings_total := 0;
      rank_inversions := 0;
      reentries := 0;
      cycles := 0;
      unlocked_accesses := 0;
      unheld := 0;
      kernel_failures := 0;
      Atomic.set kernel_checks 0;
      Hashtbl.reset edges;
      Hashtbl.reset edge_stacks;
      (* Keep cell registrations (race-allowed status is declared once at
         module/context setup) but restart their lockset inference. *)
      Hashtbl.iter
        (fun _ c ->
           c.c_lockset <- None;
           c.c_flagged <- false;
           c.c_first_site <- "";
           c.c_accesses <- 0)
        cells)

let mode_name = function Off -> "off" | Warn -> "warn" | Strict -> "strict"

let report () =
  let c = counters () in
  let b = Buffer.create 256 in
  Printf.bprintf b "sync sanitizer: mode=%s locks=%d cells=%d race-allowed=%d kernel-checks=%d\n"
    (mode_name (mode ())) c.locks c.cells c.race_allowed c.kernel_checks;
  Printf.bprintf b
    "sync findings: total=%d rank-inversions=%d reentries=%d cycles=%d unlocked=%d unheld=%d kernel=%d\n"
    c.total c.rank_inversions c.reentries c.lock_cycles c.unlocked_accesses
    c.unheld_locks c.kernel_failures;
  List.iter
    (fun f -> Printf.bprintf b "  [%s] %s: %s\n" f.f_kind f.f_subject f.f_detail)
    (findings ());
  let allowed =
    metaed (fun () ->
        Hashtbl.fold (fun _ c acc -> if c.c_allowed then c :: acc else acc) cells [])
  in
  List.iter
    (fun c ->
       Printf.bprintf b "  race-allowed %s (%d accesses): %s\n" c.c_name
         c.c_accesses c.c_justification)
    (List.sort (fun a bc -> compare a.c_name bc.c_name) allowed);
  Buffer.contents b

(* Initialize from the environment once at load; tests and the CLI can
   override with [set_mode]. When sanitizing is on, leave a stderr trace
   at exit if any finding was recorded, so soak jobs fail on grep. *)
let () =
  (match Sys.getenv_opt "VIDA_SANITIZE" with
   | Some s -> set_mode (mode_of_string s)
   | None -> ());
  if enabled () then
    at_exit (fun () ->
        let c = counters () in
        if c.total > 0 then (
          prerr_string ("vida-sync: unresolved sync findings\n" ^ report ());
          flush stderr))
