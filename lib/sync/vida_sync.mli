(** Concurrency sanitizer for the multi-domain serving stack.

    Every mutex in [lib/] is created through {!Lock.create} with a
    declared {e rank} and resource name. With sanitizing off (the
    default) a lock is a plain [Mutex.t] behind a single mode-check
    branch. Under [VIDA_SANITIZE] the layer additionally:

    - maintains a held-lock stack per (domain, thread) — server
      connection threads are systhreads sharing domain 0, so stacks are
      keyed by thread, never by domain alone;
    - rejects same-lock re-entry (fatal even in warn mode: the stdlib
      mutex would deadlock silently) and rank inversions (a lock may
      only be acquired when its rank is strictly greater than every
      rank already held) at acquire time;
    - accumulates a process-global acquired-before graph over lock
      names and reports any cycle — deadlock potential — naming both
      contradicting acquisition stacks;
    - runs an Eraser-style lockset pass over shared cells registered
      with {!Cell.register}: an access whose candidate lockset (the
      intersection of locks held at every access so far) becomes empty
      is flagged with the first and current sites, unless the cell was
      declared race-tolerant with {!Cell.allow_race};
    - records kernel-safety obligation failures (lint catalog P08-P10)
      reported by the vectorized rung via {!kernel_failed}.

    Verdicts follow the Off/Warn/Strict ladder: [Warn] records findings
    (surfaced in {!report}, [Vida.analysis_report] and the server
    health snapshot), [Strict] additionally raises
    [Vida_error.Sync_violation] (exit code 79).

    [VIDA_SANITIZE] values: unset/["0"]/["off"] — off; ["1"]/["warn"] —
    warn; ["2"]/["strict"] — strict. *)

type mode = Off | Warn | Strict

val mode : unit -> mode
val set_mode : mode -> unit

val enabled : unit -> bool
(** [true] when the mode is [Warn] or [Strict]. Callers may use this to
    skip building diagnostic detail on the fast path. *)

(** Ranked, named mutexes. The rank table lives in DESIGN.md §14; the
    invariant is that nested acquisition must follow strictly increasing
    ranks. *)
module Lock : sig
  type t

  val create : rank:int -> name:string -> unit -> t
  val name : t -> string
  val rank : t -> int

  val lock : t -> unit
  val unlock : t -> unit

  (** [protect t f] runs [f ()] with [t] held, releasing on any exit. *)
  val protect : t -> (unit -> 'a) -> 'a

  (** [wait cond t] waits on [cond] with [t] held. The lock stays on the
      held stack across the wait: [Condition.wait] releases and
      reacquires it at the same stack position. Waiting without holding
      [t] is fatal in every sanitize mode. *)
  val wait : Condition.t -> t -> unit

  (** [assert_held t] converts a "caller must hold [t]" prose contract
      into a checked one: in sanitize mode, records an ["unheld-lock"]
      finding (strict: raises) when this thread does not hold [t]. A
      no-op when sanitizing is off. *)
  val assert_held : t -> unit
end

(** Registered shared cells for the lockset pass. Cell names are global
    (e.g. ["plugins.bad-rows"]); sites are static strings naming the
    accessing code path. *)
module Cell : sig
  val register : name:string -> unit

  (** [allow_race ~name ~justification] declares the cell's unlocked
      accesses tolerated by design; accesses are still counted but never
      flagged. The justification appears in DESIGN.md §14. *)
  val allow_race : name:string -> justification:string -> unit

  val read : name:string -> site:string -> unit
  val write : name:string -> site:string -> unit
end

(** {1 Kernel-safety obligations (P08-P10)} *)

val note_kernel_check : unit -> unit
(** Count one discharged obligation check (for the health snapshot). *)

val kernel_failed :
  id:string -> subject:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [kernel_failed ~id ~subject fmt] records a ["kernel-obligation"]
    finding for lint rule [id] (["P08"] | ["P09"] | ["P10"]); raises in
    strict mode. *)

(** {1 Findings} *)

type finding = { f_kind : string; f_subject : string; f_detail : string }
(** [f_kind] is one of ["rank-inversion"], ["reentry"], ["lock-cycle"],
    ["unlocked-access"], ["unheld-lock"], ["kernel-obligation"]. *)

type counters = {
  locks : int;          (** locks created through {!Lock.create} *)
  cells : int;          (** shared cells registered *)
  race_allowed : int;   (** cells registered race-allowed *)
  kernel_checks : int;  (** P08-P10 obligations discharged *)
  rank_inversions : int;
  reentries : int;
  lock_cycles : int;
  unlocked_accesses : int;
  unheld_locks : int;
  kernel_failures : int;
  total : int;          (** all findings, including those past the cap *)
}

val findings : unit -> finding list
(** Recorded findings, oldest first, capped at 100 (the {!counters}
    totals keep exact counts past the cap). *)

val counters : unit -> counters
val report : unit -> string

val reset : unit -> unit
(** Clear findings, counters, the acquired-before graph, and every
    cell's inferred lockset. Cell registrations and race-allowed status
    survive (they are declared once at module/context setup). *)
