type span = { source : string; offset : int; length : int }

type t =
  | Parse_error of { source : string; offset : int; reason : string }
  | Truncated of { source : string; offset : int; expected : string }
  | Stale_auxiliary of { source : string; auxiliary : string; reason : string }
  | Resource_limit of { source : string; what : string; actual : int; limit : int }
  | Io_failure of { source : string; reason : string }
  | Invalid_request of { source : string; reason : string }
  | Deadline_exceeded of { source : string; elapsed_ms : float; deadline_ms : float }
  | Budget_exceeded of { source : string; requested : int; budget : int }
  | Cancelled of { source : string; reason : string }
  | Type_invalid of { context : string; reason : string }
  | Plan_invalid of { stage : string; rule : string option; reason : string }
  | Source_changed of { source : string; detail : string }
  | Overloaded of { source : string; reason : string; retry_after_ms : float }
  | Source_unavailable of { source : string; reason : string; retry_after_ms : float }
  | Sync_violation of { subject : string; kind : string; reason : string }
  | State_failure of { source : string; op : string; reason : string }

exception Error of t

let error e = raise (Error e)

let parse_error ~source ~offset fmt =
  Format.kasprintf (fun reason -> error (Parse_error { source; offset; reason })) fmt

let truncated ~source ~offset fmt =
  Format.kasprintf (fun expected -> error (Truncated { source; offset; expected })) fmt

let stale_auxiliary ~source ~auxiliary fmt =
  Format.kasprintf
    (fun reason -> error (Stale_auxiliary { source; auxiliary; reason }))
    fmt

let resource_limit ~source ~what ~actual ~limit =
  error (Resource_limit { source; what; actual; limit })

let io_failure ~source fmt =
  Format.kasprintf (fun reason -> error (Io_failure { source; reason })) fmt

let invalid_request ~source fmt =
  Format.kasprintf (fun reason -> error (Invalid_request { source; reason })) fmt

let deadline_exceeded ~source ~elapsed_ms ~deadline_ms =
  error (Deadline_exceeded { source; elapsed_ms; deadline_ms })

let budget_exceeded ~source ~requested ~budget =
  error (Budget_exceeded { source; requested; budget })

let cancelled ~source fmt =
  Format.kasprintf (fun reason -> error (Cancelled { source; reason })) fmt

let type_invalid ~context fmt =
  Format.kasprintf (fun reason -> error (Type_invalid { context; reason })) fmt

let plan_invalid ~stage ?rule fmt =
  Format.kasprintf (fun reason -> error (Plan_invalid { stage; rule; reason })) fmt

let source_changed ~source fmt =
  Format.kasprintf (fun detail -> error (Source_changed { source; detail })) fmt

let overloaded ~source ~retry_after_ms fmt =
  Format.kasprintf
    (fun reason -> error (Overloaded { source; reason; retry_after_ms }))
    fmt

let source_unavailable ~source ~retry_after_ms fmt =
  Format.kasprintf
    (fun reason -> error (Source_unavailable { source; reason; retry_after_ms }))
    fmt

let sync_violation ~subject ~kind fmt =
  Format.kasprintf (fun reason -> error (Sync_violation { subject; kind; reason })) fmt

let state_failure ~source ~op fmt =
  Format.kasprintf (fun reason -> error (State_failure { source; op; reason })) fmt

let source = function
  | Parse_error { source; _ }
  | Truncated { source; _ }
  | Stale_auxiliary { source; _ }
  | Resource_limit { source; _ }
  | Io_failure { source; _ }
  | Invalid_request { source; _ }
  | Deadline_exceeded { source; _ }
  | Budget_exceeded { source; _ }
  | Cancelled { source; _ }
  | Source_changed { source; _ }
  | Overloaded { source; _ }
  | Source_unavailable { source; _ } -> source
  | Type_invalid { context; _ } -> context
  | Plan_invalid { stage; _ } -> stage
  | Sync_violation { subject; _ } -> subject
  | State_failure { source; _ } -> source

let offset = function
  | Parse_error { offset; _ } | Truncated { offset; _ } -> Some offset
  | Stale_auxiliary _ | Resource_limit _ | Io_failure _ | Invalid_request _
  | Deadline_exceeded _ | Budget_exceeded _ | Cancelled _ | Type_invalid _
  | Plan_invalid _ | Source_changed _ | Overloaded _ | Source_unavailable _
  | Sync_violation _ | State_failure _ ->
    None

let kind_name = function
  | Parse_error _ -> "parse"
  | Truncated _ -> "truncated"
  | Stale_auxiliary _ -> "stale"
  | Resource_limit _ -> "limit"
  | Io_failure _ -> "io"
  | Invalid_request _ -> "invalid"
  | Deadline_exceeded _ -> "deadline"
  | Budget_exceeded _ -> "budget"
  | Cancelled _ -> "cancelled"
  | Type_invalid _ -> "type"
  | Plan_invalid _ -> "plan"
  | Source_changed _ -> "changed"
  | Overloaded _ -> "overloaded"
  | Source_unavailable _ -> "unavailable"
  | Sync_violation _ -> "sync"
  | State_failure _ -> "state"

let exit_code = function
  | Parse_error _ -> 65
  | Truncated _ -> 66
  | Stale_auxiliary _ -> 67
  | Resource_limit _ -> 68
  | Io_failure _ -> 69
  | Invalid_request _ -> 70
  | Deadline_exceeded _ -> 71
  | Budget_exceeded _ -> 72
  | Cancelled _ -> 73
  | Type_invalid _ -> 74
  | Plan_invalid _ -> 75
  | Source_changed _ -> 76
  | Overloaded _ -> 77
  | Source_unavailable _ -> 78
  | Sync_violation _ -> 79
  | State_failure _ -> 80

let pp ppf = function
  | Parse_error { source; offset; reason } ->
    Format.fprintf ppf "%s: byte %d: %s" source offset reason
  | Truncated { source; offset; expected } ->
    Format.fprintf ppf "%s: truncated at byte %d (expected %s)" source offset expected
  | Stale_auxiliary { source; auxiliary; reason } ->
    Format.fprintf ppf "%s: stale %s: %s" source auxiliary reason
  | Resource_limit { source; what; actual; limit } ->
    Format.fprintf ppf "%s: %s %d exceeds the limit of %d" source what actual limit
  | Io_failure { source; reason } -> Format.fprintf ppf "%s: I/O failure: %s" source reason
  | Invalid_request { source; reason } -> Format.fprintf ppf "%s: %s" source reason
  | Deadline_exceeded { source; elapsed_ms; deadline_ms } ->
    Format.fprintf ppf "%s: deadline exceeded after %.1f ms (budget %.1f ms)" source
      elapsed_ms deadline_ms
  | Budget_exceeded { source; requested; budget } ->
    Format.fprintf ppf "%s: memory budget exceeded: %d bytes requested over a %d-byte budget"
      source requested budget
  | Cancelled { source; reason } -> Format.fprintf ppf "%s: cancelled: %s" source reason
  | Type_invalid { context; reason } -> Format.fprintf ppf "%s (in %s)" reason context
  | Plan_invalid { stage; rule; reason } ->
    Format.fprintf ppf "invalid plan after %s%s: %s" stage
      (match rule with Some r -> Printf.sprintf " (rule %s)" r | None -> "")
      reason
  | Source_changed { source; detail } ->
    Format.fprintf ppf "%s: source changed under the query: %s" source detail
  | Overloaded { source; reason; retry_after_ms } ->
    Format.fprintf ppf "%s: overloaded: %s (retry after %.0f ms)" source reason
      retry_after_ms
  | Source_unavailable { source; reason; retry_after_ms } ->
    Format.fprintf ppf "%s: source unavailable: %s (retry after %.0f ms)"
      source reason retry_after_ms
  | Sync_violation { subject; kind; reason } ->
    Format.fprintf ppf "%s: sync violation (%s): %s" subject kind reason
  | State_failure { source; op; reason } ->
    Format.fprintf ppf "%s: durable-state %s failed: %s" source op reason

let to_string e = Format.asprintf "%a" pp e

let protect ~source f =
  try f () with
  | Error _ as e -> raise e
  | Sys_error reason -> error (Io_failure { source; reason })
  | Failure reason -> error (Parse_error { source; offset = 0; reason })
  | Invalid_argument reason -> error (Parse_error { source; offset = 0; reason })

let guard f = match f () with v -> Ok v | exception Error e -> Result.Error e

module Limits = struct
  type t = {
    max_row_bytes : int;
    max_nesting : int;
    max_fields : int;
    max_string_bytes : int;
  }

  let default =
    { max_row_bytes = 16 * 1024 * 1024;
      max_nesting = 512;
      max_fields = 65536;
      max_string_bytes = 64 * 1024 * 1024 }

  let state = ref default
  let current () = !state
  let set l = state := l

  let with_limits l f =
    let saved = !state in
    state := l;
    Fun.protect ~finally:(fun () -> state := saved) f

  let check ~source ~offset:_ what actual limit =
    if actual > limit then resource_limit ~source ~what ~actual ~limit

  let check_nesting ~source ~offset depth =
    check ~source ~offset "nesting depth" depth !state.max_nesting

  let check_fields ~source ~offset n = check ~source ~offset "field count" n !state.max_fields

  let check_row_bytes ~source ~offset n =
    check ~source ~offset "row length" n !state.max_row_bytes

  let check_string_bytes ~source ~offset n =
    check ~source ~offset "string length" n !state.max_string_bytes
end
