(** Structured errors for the raw-data access path.

    ViDa queries files it does not control: they may be truncated mid-write,
    concurrently modified, bit-flipped on disk, or simply malformed. Every
    layer that touches raw bytes (raw buffers, scanners, auxiliary
    structures, binary caches) reports failures through this typed taxonomy
    instead of bare [Failure]/[Invalid_argument], so the engine can decide
    per {!Vida_cleaning.Policy} whether to recover, quarantine, or abort —
    and so callers always receive a source name and byte offset. *)

(** A byte range inside a named raw source. *)
type span = { source : string; offset : int; length : int }

type t =
  | Parse_error of { source : string; offset : int; reason : string }
      (** malformed bytes where a record/value was expected *)
  | Truncated of { source : string; offset : int; expected : string }
      (** the data ends before [expected] could be read *)
  | Stale_auxiliary of { source : string; auxiliary : string; reason : string }
      (** a sidecar / cached structure no longer matches its data file *)
  | Resource_limit of { source : string; what : string; actual : int; limit : int }
      (** a configurable guard tripped (row length, nesting depth, ...) *)
  | Io_failure of { source : string; reason : string }
      (** the operating system failed the read *)
  | Invalid_request of { source : string; reason : string }
      (** the caller asked for data that cannot exist (row out of range, ...) *)
  | Deadline_exceeded of { source : string; elapsed_ms : float; deadline_ms : float }
      (** the query's governor deadline fired before it finished *)
  | Budget_exceeded of { source : string; requested : int; budget : int }
      (** the query tried to materialize more bytes than its governor budget *)
  | Cancelled of { source : string; reason : string }
      (** the query's cancellation token was tripped cooperatively *)
  | Type_invalid of { context : string; reason : string }
      (** a query expression failed static type validation; [context] is
          the offending (sub)expression rendered as text *)
  | Plan_invalid of { stage : string; rule : string option; reason : string }
      (** the plan verifier rejected an algebra plan; [stage] names the
          pipeline point ("translate", "optimize", "parallel", ...) and
          [rule] the optimizer/parallel rewrite whose firing broke the
          invariant, when one did *)
  | Source_changed of { source : string; detail : string }
      (** a raw file changed away from the generation the running query
          pinned at start (its {!Vida_raw.Epoch}); [detail] classifies the
          change ("appended", "rewritten", ...). The governor converts this
          into a bounded re-pin-and-retry under a [Retry_fresh] policy *)
  | Overloaded of { source : string; reason : string; retry_after_ms : float }
      (** the serving layer shed this query under load (admission queue
          full, queue wait past its deadline, tenant concurrency cap, or
          aggregate memory watermark); [retry_after_ms] is the backoff the
          client should apply before resubmitting *)
  | Source_unavailable of { source : string; reason : string; retry_after_ms : float }
      (** the per-source circuit breaker is open: the source failed
          consecutively often enough that further queries over it are shed
          immediately instead of paying a full failing scan each;
          [retry_after_ms] is the remaining cooldown before the breaker
          half-opens and lets a probe through (see
          {!Vida_governor.Governor.Breaker}) *)
  | Sync_violation of { subject : string; kind : string; reason : string }
      (** the concurrency sanitizer ([Vida_sync], active under
          [VIDA_SANITIZE]) detected a lock-discipline or shared-state
          violation; [subject] names the offending lock or cell and [kind]
          classifies the finding ("rank-inversion", "reentry",
          "lock-cycle", "unlocked-access", "unheld-lock",
          "kernel-obligation") *)
  | State_failure of { source : string; op : string; reason : string }
      (** a durable-state persistence operation failed at the OS level —
          disk full ([ENOSPC]), fd exhaustion ([EMFILE]), an IO error
          ([EIO]) — while writing the state directory, a sidecar or an
          export file; [source] names the path, [op] the operation
          ("open", "write", "rename", "lock", ...). Persistence failures
          degrade to a no-persist mode (queries keep answering, warm
          state stops being saved), they never abort the process *)

exception Error of t

(** {1 Raising} *)

val error : t -> 'a

val parse_error :
  source:string -> offset:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val truncated :
  source:string -> offset:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val stale_auxiliary :
  source:string -> auxiliary:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val resource_limit : source:string -> what:string -> actual:int -> limit:int -> 'a
val io_failure : source:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val invalid_request : source:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val deadline_exceeded : source:string -> elapsed_ms:float -> deadline_ms:float -> 'a
val budget_exceeded : source:string -> requested:int -> budget:int -> 'a
val cancelled : source:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val type_invalid : context:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val plan_invalid :
  stage:string -> ?rule:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val source_changed : source:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val overloaded :
  source:string -> retry_after_ms:float ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val source_unavailable :
  source:string -> retry_after_ms:float ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val sync_violation :
  subject:string -> kind:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val state_failure :
  source:string -> op:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Inspection} *)

val source : t -> string
val offset : t -> int option  (** byte offset, when the error names one *)

val kind_name : t -> string
(** short stable tag: ["parse"], ["truncated"], ["stale"], ["limit"],
    ["io"], ["invalid"], ["deadline"], ["budget"], ["cancelled"],
    ["type"], ["plan"], ["changed"], ["overloaded"], ["unavailable"],
    ["sync"], ["state"] *)

val exit_code : t -> int
(** distinct process exit code per kind, for CLI surfacing:
    parse 65, truncated 66, stale 67, limit 68, io 69, invalid 70,
    deadline 71, budget 72, cancelled 73, type 74, plan 75, changed 76,
    overloaded 77, unavailable 78, sync 79, state 80. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [protect ~source f] runs [f], converting [Sys_error], stray [Failure]
    and [Invalid_argument] leaking from below into {!Io_failure} /
    {!Parse_error} so the raw-access path never surfaces an untyped
    exception. [Error] passes through untouched. *)
val protect : source:string -> (unit -> 'a) -> 'a

(** [guard f] captures a structured error as a [result]. *)
val guard : (unit -> 'a) -> ('a, t) result

(** {1 Resource guards}

    Global, configurable limits consulted by the scanners. Exceeding one
    raises {!Resource_limit} instead of looping or overflowing the stack. *)
module Limits : sig
  type t = {
    max_row_bytes : int;  (** longest CSV row (quote-runaway guard) *)
    max_nesting : int;  (** deepest JSON/XML/VBSON nesting *)
    max_fields : int;  (** most fields in one record/object *)
    max_string_bytes : int;  (** longest single decoded string *)
  }

  val default : t
  val current : unit -> t
  val set : t -> unit

  (** [with_limits l f] runs [f] under [l], restoring the previous limits
      afterwards (exception-safe). *)
  val with_limits : t -> (unit -> 'a) -> 'a

  (** [check_nesting ~source ~offset depth] — raises when [depth] exceeds
      [max_nesting]. *)
  val check_nesting : source:string -> offset:int -> int -> unit

  val check_fields : source:string -> offset:int -> int -> unit
  val check_row_bytes : source:string -> offset:int -> int -> unit
  val check_string_bytes : source:string -> offset:int -> int -> unit
end
