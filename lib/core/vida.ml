open Vida_data
open Vida_calculus
open Vida_catalog
open Vida_engine

module Governor = Vida_governor.Governor

type engine = Jit | Generic

(** How much the plan verifier participates in the query pipeline. *)
type verify = Off | Warn | Strict

type t = {
  registry : Registry.t;
  mutable ctx : Plugins.ctx;
  mutable params : (string * Value.t) list;
  mutable limits : Governor.limits;
  mutable verify : verify;
  mutable verify_log : string list;  (* newest first *)
  mutable queries_run : int;
  mutable queries_from_cache : int;
  mutable session_io : Vida_raw.Io_stats.snapshot;
  (* §5 result re-use: optimized plan text -> (result, referenced sources,
     per-source file fingerprints at computation time) *)
  result_cache : (string, Value.t * string list * (string * string) list) Hashtbl.t;
  mutable result_hits : int;
  mutable result_stale_drops : int;
  (* plan cache (serving layer): query text -> optimized plan, stamped
     with the source fingerprints and the catalog revision it was derived
     under; a hit skips parse/typecheck/translate/optimize entirely *)
  plan_cache : (string, Vida_algebra.Plan.t * (string * string) list * int) Hashtbl.t;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable catalog_rev : int;
      (* bumped on any change that can affect planning: registration,
         unregistration, parameter binds, invalidation, cleaning policies,
         source refreshes. Plan-cache entries from older revisions miss. *)
  (* --- durable warm state (ISSUE: crash-safe state directory) ---
     plan-cache entries spilled by an earlier process. Catalog revisions
     do not survive a restart, so spilled entries cannot carry one: a
     spill hit is validated by its source fingerprints alone and promoted
     into the live cache under the CURRENT revision — stale spills cost a
     replan, never a wrong plan. *)
  state : Vida_raw.State_dir.t option;
  plan_spill : (string, Vida_algebra.Plan.t * (string * string) list) Hashtbl.t;
  mutable plan_warm_hits : int;  (* plans served from the state directory *)
  mutable ledger_pending :
    (string * string * int list * bool
    * Vida_cleaning.Policy.quarantine_entry list)
    list;
      (* quarantine ledgers loaded at warm boot, waiting for their source
         to be registered: (source, fingerprint stamp, bad rows,
         structural flag, quarantine entries). Applied on the first query
         after the source appears, only under a matching fingerprint. *)
  mutable last_persist_ms : float;  (* debounce for {!maybe_persist} *)
  lock : Vida_sync.Lock.t;
      (* one instance serves many concurrent sessions: guards the result
         and plan caches, counters, verify log and ctx/params swaps *)
}

(* artifact version tags: Marshal framing is only self-describing within
   one compiler version, so the tag pins both the layout revision and the
   compiler — a mismatch makes the whole artifact read as cold, which is
   always safe *)
let artifact_version kind = Printf.sprintf "%s:1:%s" kind Sys.ocaml_version

let decode_frames : 'a. string -> string list option -> 'a list =
 fun kind frames ->
  match frames with
  | Some (v :: rest) when String.equal v (artifact_version kind) ->
    List.filter_map
      (fun f ->
        (* frames are CRC-validated, so bytes are exactly what a previous
           process wrote; the guard covers layout drift across versions *)
        match (Marshal.from_string f 0 : 'a) with
        | v -> Some v
        | exception _ -> None)
      rest
  | _ -> []

let load_warm_state ctx plan_spill sd =
  Vida_engine.Structures.set_sidecar_dir ctx.Plugins.structures
    (Vida_raw.State_dir.structure_dir sd);
  let breakers : Governor.Breaker.persisted list =
    decode_frames "breakers"
      (Vida_raw.State_dir.load_artifact sd ~name:"breakers")
  in
  Governor.Breaker.import breakers;
  let plans : (string * (string * string) list * Vida_algebra.Plan.t) list =
    decode_frames "plans" (Vida_raw.State_dir.load_artifact sd ~name:"plans")
  in
  List.iter
    (fun (key, stamps, plan) -> Hashtbl.replace plan_spill key (plan, stamps))
    plans;
  (decode_frames "ledger" (Vida_raw.State_dir.load_artifact sd ~name:"ledger")
    : (string * string * int list * bool
      * Vida_cleaning.Policy.quarantine_entry list)
      list)

let create ?cache_capacity ?domains ?(limits = Governor.unlimited) ?state_dir
    () =
  let registry = Registry.create () in
  let ctx = Plugins.create_ctx ?cache_capacity ?domains registry in
  let state =
    Option.map (fun dir -> Vida_raw.State_dir.open_dir dir) state_dir
  in
  let plan_spill = Hashtbl.create 16 in
  let ledger_pending =
    match state with
    | None -> []
    | Some sd -> load_warm_state ctx plan_spill sd
  in
  { registry; ctx; params = []; limits; verify = Warn; verify_log = [];
    queries_run = 0; queries_from_cache = 0;
    session_io = Vida_raw.Io_stats.zero; result_cache = Hashtbl.create 64;
    result_hits = 0; result_stale_drops = 0; plan_cache = Hashtbl.create 64;
    plan_hits = 0; plan_misses = 0; catalog_rev = 0;
    state; plan_spill; plan_warm_hits = 0; ledger_pending;
    last_persist_ms = 0.;
    lock = Vida_sync.Lock.create ~rank:10 ~name:"vida.instance" () }

let locked t f = Vida_sync.Lock.protect t.lock f

(* any catalog-affecting change retires every cached plan *)
let bump_rev t = locked t (fun () -> t.catalog_rev <- t.catalog_rev + 1)

let set_verify t v = t.verify <- v
let verify_mode t = t.verify
let verify_log t = List.rev t.verify_log

let set_limits t limits = t.limits <- limits
let limits t = t.limits

(* [set_domains] takes the request literally (only floored at 1): a
   deliberate programmatic choice may oversubscribe the hardware — tests
   exercising the parallel path on small machines, IO-bound scans — while
   [create ?domains] resolves conservatively through {!Vida_raw.Morsel}. *)
let set_domains t d =
  locked t (fun () -> t.ctx <- { t.ctx with Plugins.domains = max 1 d });
  bump_rev t
let domains t = t.ctx.Plugins.domains

let set_batch_rows n = Vida_engine.Vector.set_batch_rows n
let batch_rows () = Vida_engine.Vector.batch_rows ()
let set_vectorized b = Vida_engine.Vector.set_enabled b
let vectorized () = Vida_engine.Vector.enabled ()
let vector_stats () = Vida_engine.Vector.stats ()

let csv t ~name ~path ?delim ?header ?schema () =
  ignore (Registry.register_csv t.registry ~name ~path ?delim ?header ?schema ());
  bump_rev t

let json t ~name ~path ?element () =
  ignore (Registry.register_json t.registry ~name ~path ?element ());
  bump_rev t

let xml t ~name ~path ?element () =
  ignore (Registry.register_xml t.registry ~name ~path ?element ());
  bump_rev t

let binarray t ~name ~path =
  ignore (Registry.register_binarray t.registry ~name ~path);
  bump_rev t

let inline t ~name v =
  ignore (Registry.register_inline t.registry ~name v);
  bump_rev t

let external_source t ~name ~element ~count ~produce =
  ignore (Registry.register_external t.registry ~name ~element ~count ~produce);
  bump_rev t

let purge_results t source =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun key (_, sources, _) acc ->
            if List.mem source sources then key :: acc else acc)
          t.result_cache []
      in
      List.iter (Hashtbl.remove t.result_cache) victims;
      t.catalog_rev <- t.catalog_rev + 1)

(* Current fingerprints of the file-backed sources among [names]; sources
   with no backing file (inline, external) carry no fingerprint. Inside a
   query the ambient epoch's pin is authoritative — the generation the
   query runs against, not whatever the file mutated to since. *)
let current_fingerprint name path =
  match Vida_raw.Epoch.pinned name with
  | Some fp -> Some fp
  | None -> Vida_raw.Fingerprint.probe path

let source_fingerprints t names =
  List.filter_map
    (fun name ->
      match Registry.find t.registry name with
      | Some { Source.path = Some path; _ } ->
        Option.map
          (fun fp -> (name, Vida_raw.Fingerprint.encode fp))
          (current_fingerprint name path)
      | _ -> None)
    names

(* A cached result is only servable while every file it was computed from
   still has the fingerprint it had then — otherwise serving it would
   return values from bytes that no longer exist. *)
let fingerprints_fresh t stored =
  List.for_all
    (fun (name, stamp) ->
      match Registry.find t.registry name with
      | Some { Source.path = Some path; _ } -> (
        match current_fingerprint name path with
        | Some fp -> String.equal (Vida_raw.Fingerprint.encode fp) stamp
        | None -> false)
      | _ -> true)
    stored

let bind_param t name v =
  locked t (fun () ->
      t.params <- (name, v) :: List.remove_assoc name t.params;
      Hashtbl.reset t.result_cache;
      Hashtbl.reset t.plan_cache;
      t.catalog_rev <- t.catalog_rev + 1;
      t.ctx <- { t.ctx with Plugins.params = t.params })

let sources t = Registry.names t.registry
let describe t name = Registry.find t.registry name

type error =
  | Parse_error of string
  | Type_error of string
  | Engine_error of string
  | Data_error of Vida_error.t

let error_to_string = function
  | Parse_error msg -> "parse error: " ^ msg
  | Type_error msg -> "type error: " ^ msg
  | Engine_error msg -> "engine error: " ^ msg
  | Data_error e -> Vida_error.to_string e

type result = {
  value : Value.t;
  plan : Vida_algebra.Plan.t;
  compile_ms : float;
  exec_ms : float;
  raw_io : Vida_raw.Io_stats.snapshot;
  served_from_cache : bool;
  from_result_cache : bool;
  plan_from_cache : bool;
      (* the optimized plan came from the instance plan cache: parse,
         typecheck, translation and optimization were all skipped *)
  governor : Governor.report;
  epochs : (string * string) list;
      (* the query's pinned generations: source name -> encoded
         fingerprint of the file version every served value came from *)
}

type stats = {
  queries_run : int;
  queries_from_cache : int;
  result_reuse_hits : int;
  result_stale_drops : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  cache : Vida_storage.Cache.stats;
  io : Vida_raw.Io_stats.snapshot;
  structures_bytes : int;
}

let invalidate t name =
  Plugins.invalidate t.ctx name;
  purge_results t name

let set_cleaning t ~source policy =
  Plugins.set_cleaning t.ctx ~source policy;
  purge_results t source

let cleaning_report t ~source =
  Vida_cleaning.Policy.report (Plugins.cleaning_policy t.ctx source)

let problematic_entries t ~source = Plugins.bad_row_count t.ctx source

let quarantine_report t ~source = Plugins.quarantine_report t.ctx source

let type_env t =
  Registry.type_env t.registry
  @ List.map (fun (name, v) -> (name, Value.typeof v)) t.params

(* Bring sources the expression references up to date (paper §2.1,
   refined): appends extend the derived state incrementally, anything
   else drops it. Either way results computed against the old generation
   are purged. *)
let refresh_referenced t refs =
  List.iter
    (fun v ->
      match Registry.find t.registry v with
      | Some source -> (
        match Plugins.refresh_source t.ctx source with
        | `Unchanged -> ()
        | `Extended | `Rebuilt -> purge_results t v)
      | None -> ())
    refs

(* Pin the current generation of every referenced file-backed source.
   Each is pinned under both its registry name (cache stamping, producer
   ticks) and its backing path (raw-buffer loads, scan loops) — see
   {!Vida_raw.Epoch.pin}. Returns the pins for the query result. *)
let pin_referenced t epoch refs =
  List.filter_map
    (fun v ->
      match Registry.find t.registry v with
      | Some { Source.name; path = Some path; _ } -> (
        match Vida_raw.Fingerprint.probe path with
        | Some fp ->
          Vida_raw.Epoch.pin epoch ~source:name ~path fp;
          if not (String.equal name path) then
            Vida_raw.Epoch.pin epoch ~source:path ~path fp;
          Some (name, Vida_raw.Fingerprint.encode fp)
        | None -> None)
      | _ -> None)
    refs

(* wall-clock milliseconds: reported durations must include time spent
   blocked or on worker domains, which CPU time ([Sys.time]) misses *)
let now_ms () = Unix.gettimeofday () *. 1000.

(* --- plan-verifier participation (ISSUE: typed-IR invariant checking).

   [Warn] re-derives well-typedness after translation and optimization and
   per rewrite firing, recording violations in [verify_log]; [Strict]
   aborts the query with [Vida_error.Plan_invalid] instead. [Off] skips
   verification entirely. *)

let note_verify t e =
  locked t (fun () -> t.verify_log <- Vida_error.to_string e :: t.verify_log)

let verify_stage t ~env stage plan =
  match t.verify with
  | Off -> ()
  | Warn -> (
    match Vida_analysis.Verifier.verify ~stage ~env plan with
    | Ok () -> ()
    | Error e -> note_verify t e)
  | Strict -> Vida_analysis.Verifier.verify_exn ~stage ~env plan

(* Per-firing pre/post obligation, installed as the optimizer's and the
   parallel engine's rewrite checker. *)
let firing_check t ~env stage ~rule ~before ~after =
  match t.verify with
  | Off -> ()
  | Warn | Strict -> (
    match Vida_analysis.Verifier.check_rewrite ~stage ~rule ~env ~before ~after with
    | Ok () -> ()
    | Error e -> if t.verify = Strict then raise (Vida_error.Error e) else note_verify t e)

(* A unit of execution: a freshly parsed expression going through the
   whole pipeline, or an optimized plan served by the plan cache that
   skips straight to execution. *)
let rec run_job ?(engine = Jit) ?(optimize = true) ?(reuse = true) ?domains
    ?(note_plan = fun _ -> ()) t
    (job : [ `Expr of Expr.t | `Plan of Vida_algebra.Plan.t ]) :
    (result, error) Result.t =
  let checked =
    match job with
    | `Plan _ ->
      (* the plan was typechecked when first derived; cache validation
         (catalog revision + source fingerprints) vouches the environment
         has not changed since *)
      Ok ()
    | `Expr expr -> (
      match Typecheck.check (type_env t) expr with
      | Error e -> Error (Type_error (Format.asprintf "%a" Typecheck.pp_error e))
      | Ok () -> Ok ())
  in
  match checked with
  | Error e -> Error e
  | Ok () ->
    (* every execution runs inside a governor session: deadline +
       cancellation token + memory budget. An already-ambient session
       (a caller wrapping several queries, or a test driving cancellation)
       is reused; otherwise a fresh one starts from the instance limits. *)
    let session, owned =
      match Governor.current () with
      | Some s -> (s, false)
      | None -> (Governor.start ~limits:t.limits ~name:"query" (), true)
    in
    let body () =
      run_governed ~engine ~optimize ~reuse ~domains ~note_plan ~session t job
    in
    if owned then Governor.with_session session body else body ()

(* Each attempt refreshes the referenced sources (repairing appends
   incrementally), pins a fresh epoch, and runs the whole pipeline inside
   it. A [Source_changed] raised anywhere — a scan-loop probe, a buffer
   reload, a cache validation — aborts the attempt before any value mixing
   two generations can be produced; the instance's change policy decides
   whether to re-pin and retry ([Retry_fresh], each retry recorded as an
   ["epoch-repin"] fallback) or surface the error ([Fail_fast]). The
   governor session (deadline, budget) spans all attempts. *)
and run_governed ~engine ~optimize ~reuse ~domains ~note_plan ~session t job :
    (result, error) Result.t =
  let refs =
    match job with
    | `Expr expr -> Expr.free_vars expr
    | `Plan plan -> Vida_algebra.Plan.free_vars plan
  in
  (* (registry name, backing path) of every file-backed source the query
     touches — the keys of their circuit breakers *)
  let breaker_keys =
    List.filter_map
      (fun v ->
        match Registry.find t.registry v with
        | Some { Source.name; path = Some path; _ } -> Some (name, path)
        | _ -> None)
      refs
  in
  let retry_budget =
    match t.limits.Governor.on_change with
    | Governor.Retry_fresh n -> max 0 n
    | Governor.Fail_fast -> 0
  in
  let rec attempt retries_left =
    let outcome =
      try
        (* shed before any work when a referenced source's breaker is
           open: a hashtable probe instead of refresh + pin + scan *)
        List.iter
          (fun (_, path) -> Governor.Breaker.check ~source:path)
          breaker_keys;
        refresh_referenced t refs;
        let epoch = Vida_raw.Epoch.create () in
        let epochs = pin_referenced t epoch refs in
        Vida_raw.Epoch.with_epoch epoch (fun () ->
            run_pinned ~engine ~optimize ~reuse ~domains ~note_plan ~session
              ~epochs t job)
      with Vida_error.Error e -> Error (Data_error e)
    in
    match outcome with
    | Error (Data_error (Vida_error.Source_changed { source; detail }))
      when retries_left > 0 ->
      Governor.note_fallback ~session ~stage:"epoch-repin"
        ~reason:(source ^ ": " ^ detail) ();
      attempt (retries_left - 1)
    | Error
        (Data_error
           ( Vida_error.Parse_error { source; reason; _ }
           | Vida_error.Truncated { source; expected = reason; _ } ))
      when List.exists
             (fun (name, path) -> source = name || source = path)
             breaker_keys ->
      (* parse-level flapping counts against the breaker too (the IO tap
         lives on the raw-buffer load path); keyed by path, which is what
         the load-path check consults *)
      List.iter
        (fun (name, path) ->
          if source = name || source = path then
            Governor.Breaker.failure ~source:path ~reason)
        breaker_keys;
      outcome
    | Ok _ as r ->
      (* a whole-query success is the breaker's probe success: resets the
         consecutive-failure counts and closes a half-open breaker *)
      List.iter
        (fun (_, path) -> Governor.Breaker.success ~source:path)
        breaker_keys;
      r
    | r -> r
  in
  attempt retry_budget

and run_pinned ~engine ~optimize ~reuse ~domains ~note_plan ~session ~epochs t
    job : (result, error) Result.t =
    try
      let t0 = now_ms () in
      (* per-submit domain override (the serving layer's degradation
         ladder runs queries sequentially under load): a copied ctx
         sharing every cache/table, differing only in the budget *)
      let ctx =
        match domains with
        | Some d when d <> t.ctx.Plugins.domains ->
          { t.ctx with Plugins.domains = max 1 d }
        | _ -> t.ctx
      in
      let venv = type_env t in
      let plan, plan_from_cache =
        match job with
        | `Plan plan -> (plan, true)
        | `Expr expr ->
          let normalized = Rewrite.normalize expr in
          let plan = Vida_algebra.Translate.plan_of_comp normalized in
          verify_stage t ~env:venv "translate" plan;
          let plan =
            if optimize then (
              let plan =
                Vida_optimizer.Rules.with_checker
                  (firing_check t ~env:venv "optimize")
                  (fun () -> Vida_optimizer.Optimizer.optimize ctx plan)
              in
              verify_stage t ~env:venv "optimize" plan;
              plan)
            else plan
          in
          note_plan plan;
          (plan, false)
      in
      let cache_key =
        (match engine with Jit -> "jit|" | Generic -> "gen|")
        ^ Vida_algebra.Plan.to_string plan
      in
      let cached =
        (* a hit is only a hit while the underlying files are unchanged;
           a stale entry is dropped and the query recomputed *)
        match
          if reuse then
            locked t (fun () -> Hashtbl.find_opt t.result_cache cache_key)
          else None
        with
        | Some (value, _, stamps) ->
          if fingerprints_fresh t stamps then Some value
          else (
            locked t (fun () ->
                Hashtbl.remove t.result_cache cache_key;
                t.result_stale_drops <- t.result_stale_drops + 1);
            None)
        | None -> None
      in
      match cached with
      | Some value ->
        locked t (fun () ->
            t.queries_run <- t.queries_run + 1;
            t.queries_from_cache <- t.queries_from_cache + 1;
            t.result_hits <- t.result_hits + 1);
        Ok
          { value; plan; compile_ms = now_ms () -. t0; exec_ms = 0.;
            raw_io = Vida_raw.Io_stats.zero; served_from_cache = true;
            from_result_cache = true; plan_from_cache;
            governor = Governor.report session; epochs }
      | None -> (
      let run_generic () = (Interp.query ctx plan) () in
      (* degradation ladder, rung 1: a JIT code-generation or execution
         failure demotes the query to the Generic engine instead of failing
         it outright (the two engines are semantically equivalent).
         Governor violations — deadline, budget, cancellation — and
         structured data errors are NOT engine bugs and propagate. *)
      let degrade reason =
        Governor.note_fallback ~session ~stage:"jit->generic" ~reason ();
        run_generic ()
      in
      let run () =
        match engine with
        | Generic -> run_generic ()
        | Jit -> (
          match Governor.Chaos.take_jit_failure () with
          | Some reason -> degrade reason
          | None -> (
            let run_sequential () =
              match (Compile.query ctx plan) () with
              | value -> value
              | exception Plugins.Engine_error msg -> degrade msg
              | exception Eval.Error msg -> degrade msg
              | exception Value.Type_error msg -> degrade msg
              | exception Invalid_argument msg -> degrade msg
            in
            (* degradation ladder, rung 0: with a domain budget > 1, try
               the morsel-parallel engine; a decline (unsupported shape)
               or an engine failure falls back to the sequential JIT.
               Governor violations and structured data errors propagate
               from workers exactly as from the sequential path. *)
            if ctx.Plugins.domains > 1 then
              match
                Parallel.with_checker
                  (firing_check t ~env:venv "parallel")
                  (fun () -> Parallel.try_query ctx plan)
              with
              | Some value -> value
              | None -> run_sequential ()
              | exception
                  ( Plugins.Engine_error msg
                  | Eval.Error msg
                  | Value.Type_error msg
                  | Invalid_argument msg ) ->
                Governor.note_fallback ~session ~stage:"parallel->sequential"
                  ~reason:msg ();
                run_sequential ()
            else run_sequential ()))
      in
      let t1 = now_ms () in
      let io_before = Vida_raw.Io_stats.current () in
      match run () with
      | value ->
        let t2 = now_ms () in
        let raw_io = Vida_raw.Io_stats.diff (Vida_raw.Io_stats.current ()) io_before in
        let served_from_cache =
          raw_io.Vida_raw.Io_stats.bytes_read = 0
          && raw_io.Vida_raw.Io_stats.file_loads = 0
        in
        locked t (fun () ->
            t.queries_run <- t.queries_run + 1;
            if served_from_cache then
              t.queries_from_cache <- t.queries_from_cache + 1;
            t.session_io <-
              (let open Vida_raw.Io_stats in
               { bytes_read = t.session_io.bytes_read + raw_io.bytes_read;
                 fields_tokenized =
                   t.session_io.fields_tokenized + raw_io.fields_tokenized;
                 values_converted =
                   t.session_io.values_converted + raw_io.values_converted;
                 objects_parsed = t.session_io.objects_parsed + raw_io.objects_parsed;
                 index_probes = t.session_io.index_probes + raw_io.index_probes;
                 file_loads = t.session_io.file_loads + raw_io.file_loads
               }));
        if reuse then (
          let sources = Vida_algebra.Plan.free_vars plan in
          let stamps = source_fingerprints t sources in
          locked t (fun () ->
              Hashtbl.replace t.result_cache cache_key (value, sources, stamps)));
        Ok
          { value; plan; compile_ms = t1 -. t0; exec_ms = t2 -. t1; raw_io;
            served_from_cache; from_result_cache = false; plan_from_cache;
            governor = Governor.report session; epochs }
      | exception Plugins.Engine_error msg -> Error (Engine_error msg)
      | exception Eval.Error msg -> Error (Engine_error msg)
      | exception Value.Type_error msg -> Error (Engine_error msg))
    with Vida_error.Error e ->
      (* structured data-layer failure anywhere in the pipeline — stale
         sidecar handling, corrupt raw bytes under a Strict policy,
         resource-limit or deadline/budget/cancellation hits — surfaces as
         a typed error, never a crash *)
      Error (Data_error e)

(* --- plan cache (serving layer) ---

   Keyed on the query text (plus syntax, engine and optimize flag); an
   entry is only served while the catalog revision it was derived under is
   current AND every file-backed source it references still has the
   fingerprint it had then — a changed file can change an inferred schema
   and hence the valid plan. Serving a cached plan skips parse, typecheck,
   translation and optimization; execution (epochs, governor, result
   cache) is identical. A cached plan intentionally freezes the optimizer
   decision: runtime-feedback-driven replans only happen on a miss. *)

let plan_cache_key ~syntax ~engine ~optimize text =
  String.concat "|"
    [ syntax; (match engine with Jit -> "jit" | Generic -> "gen");
      (if optimize then "opt" else "raw"); text ]

(* A live-cache miss consults the warm spill loaded from the state
   directory: an entry whose source fingerprints all still match is
   promoted into the live cache under the current revision (counted as a
   warm hit — the reuse proof the crash harness asserts on); a stale or
   consumed entry is dropped. Revalidation happens here, per key, not at
   boot: boot stays O(read) regardless of catalog size. *)
let plan_spill_find t key =
  match locked t (fun () -> Hashtbl.find_opt t.plan_spill key) with
  | None -> None
  | Some (plan, stamps) ->
    if fingerprints_fresh t stamps then (
      locked t (fun () ->
          Hashtbl.remove t.plan_spill key;
          t.plan_warm_hits <- t.plan_warm_hits + 1;
          Hashtbl.replace t.plan_cache key (plan, stamps, t.catalog_rev));
      Some plan)
    else (
      locked t (fun () -> Hashtbl.remove t.plan_spill key);
      None)

let plan_cache_find t key =
  match locked t (fun () -> (Hashtbl.find_opt t.plan_cache key, t.catalog_rev)) with
  | None, _ -> (
    match plan_spill_find t key with
    | Some _ as hit -> hit
    | None ->
      locked t (fun () -> t.plan_misses <- t.plan_misses + 1);
      None)
  | Some (plan, stamps, rev), current_rev ->
    if rev = current_rev && fingerprints_fresh t stamps then (
      locked t (fun () -> t.plan_hits <- t.plan_hits + 1);
      Some plan)
    else (
      locked t (fun () ->
          Hashtbl.remove t.plan_cache key;
          t.plan_misses <- t.plan_misses + 1);
      None)

(* stored under the revision read {e before} the pipeline ran: if a
   concurrent catalog change (or this query's own source refresh) bumped
   the revision meanwhile, the entry self-invalidates on first lookup *)
let plan_cache_store t key ~rev plan =
  let stamps = source_fingerprints t (Vida_algebra.Plan.free_vars plan) in
  locked t (fun () -> Hashtbl.replace t.plan_cache key (plan, stamps, rev))

(* Quarantine ledgers loaded at warm boot wait here until their source is
   registered (registration order is the caller's business, not ours); a
   ledger is only restored under a matching file fingerprint — a source
   whose bytes changed since the ledger was recorded gets a clean slate,
   the same answer a cold start would give. A registered source with a
   stale or missing fingerprint drops its pending ledger. *)
let apply_pending_ledgers t =
  let pending = locked t (fun () -> t.ledger_pending) in
  if pending <> [] then (
    let remaining =
      List.filter
        (fun (name, stamp, bad, structural, quarantined) ->
          match Registry.find t.registry name with
          | None -> true (* not yet registered: keep waiting *)
          | Some { Source.path = Some path; _ } ->
            (match current_fingerprint name path with
            | Some fp when String.equal (Vida_raw.Fingerprint.encode fp) stamp
              ->
              Plugins.ledger_restore t.ctx ~source:name ~bad ~structural
                ~quarantined
            | _ -> ());
            false
          | Some _ -> false)
        pending
    in
    (* restores are idempotent, so a concurrent pass at worst replays one *)
    locked t (fun () -> t.ledger_pending <- remaining))

let run_text ?(engine = Jit) ?(optimize = true) ?(reuse = true) ?domains ~syntax
    t text =
  apply_pending_ledgers t;
  let parse =
    match syntax with `Comp -> Parser.parse | `Sql -> Vida_sql.Sql.translate
  in
  let run_parsed ?note_plan () =
    match parse text with
    | Error msg -> Error (Parse_error msg)
    | Ok expr -> run_job ~engine ~optimize ~reuse ?domains ?note_plan t (`Expr expr)
  in
  if not reuse then run_parsed ()
  else
    let key =
      plan_cache_key
        ~syntax:(match syntax with `Comp -> "comp" | `Sql -> "sql")
        ~engine ~optimize text
    in
    match plan_cache_find t key with
    | Some plan -> run_job ~engine ~optimize ~reuse ?domains t (`Plan plan)
    | None ->
      let rev = locked t (fun () -> t.catalog_rev) in
      run_parsed ~note_plan:(fun plan -> plan_cache_store t key ~rev plan) ()

let query ?engine ?optimize ?reuse ?domains t text =
  run_text ?engine ?optimize ?reuse ?domains ~syntax:`Comp t text

let sql ?engine ?optimize ?reuse ?domains t text =
  run_text ?engine ?optimize ?reuse ?domains ~syntax:`Sql t text

let query_value ?engine t text =
  match query ?engine t text with
  | Ok r -> r.value
  | Error e -> failwith (error_to_string e)

let export t text ~format ~path =
  match query t text with
  | Error _ as e -> e
  | Ok r ->
    Vida_engine.Output.write_file path format r.value;
    Ok r

let explain_expr t (expr : Expr.t) =
  (
    match Typecheck.infer (type_env t) expr with
    | Error e -> Error (Type_error (Format.asprintf "%a" Typecheck.pp_error e))
    | Ok ty ->
      let normalized = Rewrite.normalize expr in
      let trace = Rewrite.last_trace () in
      let plan = Vida_algebra.Translate.plan_of_comp normalized in
      let optimized, report = Vida_optimizer.Optimizer.optimize_with_report t.ctx plan in
      let buf = Buffer.create 512 in
      let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pf "result type: %s\n" (Ty.to_string ty);
      pf "normalized:  %s\n" (Expr.to_string normalized);
      if trace <> [] then pf "rewrites:    %s\n" (String.concat ", " trace);
      pf "\nlogical plan (%s):\n%s\n"
        (Format.asprintf "%a" Vida_optimizer.Cost.pp report.Vida_optimizer.Optimizer.before)
        (Vida_algebra.Plan.to_string plan);
      pf "\noptimized plan (%s):\n%s\n"
        (Format.asprintf "%a" Vida_optimizer.Cost.pp report.Vida_optimizer.Optimizer.after)
        (Vida_algebra.Plan.to_string optimized);
      Ok (Buffer.contents buf))

let explain t text =
  match Parser.parse text with
  | Error msg -> Error (Parse_error msg)
  | Ok expr -> explain_expr t expr

let explain_sql t text =
  match Vida_sql.Sql.translate text with
  | Error msg -> Error (Parse_error msg)
  | Ok expr -> explain_expr t expr

(* --- static analysis: verify + lint + parallelizability, no execution --- *)

type analysis = {
  analyzed_plan : Vida_algebra.Plan.t;
  verify_error : Vida_error.t option;
  findings : Vida_analysis.Lint.finding list;
  declines : (string * string) list;
}

(* Worker-safety verdicts for every operator expression: the reasons the
   morsel engine would decline (part of) this plan. Source expressions are
   resolved on the calling domain and are not gated. *)
let worker_declines t (plan : Vida_algebra.Plan.t) =
  let module Plan = Vida_algebra.Plan in
  let params = List.map fst t.params in
  let out = ref [] in
  (* an operator's expressions see the binders its child produces, not the
     (possibly narrower) environment the operator itself outputs *)
  let check ~bound where e =
    match Vida_analysis.Effects.worker_verdict ~bound ~params e with
    | Ok () -> ()
    | Error r ->
      out := (where, Vida_analysis.Effects.reason_to_string r) :: !out
  in
  let rec walk (p : Plan.t) =
    (match p with
    | Plan.Unit | Plan.Source _ | Plan.Product _ -> ()
    | Plan.Select { pred; child } ->
      check ~bound:(Plan.bound_vars child) "filter" pred
    | Plan.Map { var; expr; child } ->
      check ~bound:(Plan.bound_vars child) ("binding of " ^ var) expr
    | Plan.Unnest { path; child; _ } ->
      check ~bound:(Plan.bound_vars child) "unnest path" path
    | Plan.Join { pred; left; right } ->
      check ~bound:(Plan.bound_vars left @ Plan.bound_vars right)
        "join predicate" pred
    | Plan.Reduce { head; child; _ } ->
      check ~bound:(Plan.bound_vars child) "fold head" head
    | Plan.Nest { head; keys; child; _ } ->
      let bound = Plan.bound_vars child in
      List.iter (fun (k, e) -> check ~bound ("group key " ^ k) e) keys;
      check ~bound "group head" head);
    List.iter walk (Plan.children p)
  in
  walk plan;
  List.rev !out

let analyze_expr t (expr : Expr.t) =
  match Typecheck.check (type_env t) expr with
  | Error e -> Error (Type_error (Format.asprintf "%a" Typecheck.pp_error e))
  | Ok () ->
    let normalized = Rewrite.normalize expr in
    let plan = Vida_algebra.Translate.plan_of_comp normalized in
    let plan = Vida_optimizer.Optimizer.optimize t.ctx plan in
    let env = type_env t in
    let verify_error =
      match Vida_analysis.Verifier.verify ~stage:"analyze" ~env plan with
      | Ok () -> None
      | Error e -> Some e
    in
    let stale =
      List.filter
        (fun name ->
          match Registry.find t.registry name with
          | Some source -> Source.stale source
          | None -> false)
        (Vida_algebra.Plan.free_vars plan)
    in
    let findings = Vida_analysis.Lint.plan ~env ~stale plan in
    Ok
      { analyzed_plan = plan; verify_error; findings;
        declines = worker_declines t plan }

let analyze t text =
  match Parser.parse text with
  | Error msg -> Error (Parse_error msg)
  | Ok expr -> analyze_expr t expr

let analyze_sql t text =
  match Vida_sql.Sql.translate text with
  | Error msg -> Error (Parse_error msg)
  | Ok expr -> analyze_expr t expr

let analysis_report (a : analysis) =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "plan:\n%s\n" (Vida_algebra.Plan.to_string a.analyzed_plan);
  (match a.verify_error with
  | None -> pf "verifier:  ok\n"
  | Some e -> pf "verifier:  FAILED: %s\n" (Vida_error.to_string e));
  (match a.findings with
  | [] -> pf "lint:      clean\n"
  | fs ->
    pf "lint:      %d finding(s)\n" (List.length fs);
    List.iter
      (fun f -> pf "  %s\n" (Format.asprintf "%a" Vida_analysis.Lint.pp_finding f))
      fs);
  (match a.declines with
  | [] -> pf "parallel:  all operator expressions worker-safe\n"
  | ds ->
    pf "parallel:  %d expression(s) pin the query to the sequential engines\n"
      (List.length ds);
    List.iter (fun (where, reason) -> pf "  %s: %s\n" where reason) ds);
  (* concurrency-sanitizer state rides along: process-wide, not per-plan,
     but .analyze is where operators look when a health snapshot shows a
     non-zero sync counter *)
  let sc = Vida_sync.counters () in
  if Vida_sync.enabled () then begin
    pf
      "sync:      mode=%s locks=%d cells=%d race-allowed=%d kernel-checks=%d \
       findings=%d\n"
      (match Vida_sync.mode () with
      | Vida_sync.Off -> "off"
      | Vida_sync.Warn -> "warn"
      | Vida_sync.Strict -> "strict")
      sc.Vida_sync.locks sc.Vida_sync.cells sc.Vida_sync.race_allowed
      sc.Vida_sync.kernel_checks sc.Vida_sync.total;
    List.iter
      (fun f ->
        pf "  [%s] %s: %s\n" f.Vida_sync.f_kind f.Vida_sync.f_subject
          f.Vida_sync.f_detail)
      (Vida_sync.findings ())
  end
  else pf "sync:      sanitizer off (VIDA_SANITIZE=1 to enable)\n";
  Buffer.contents buf

let stats (t : t) =
  let queries_run, queries_from_cache, result_reuse_hits, result_stale_drops,
      plan_cache_hits, plan_cache_misses, io =
    locked t (fun () ->
        ( t.queries_run, t.queries_from_cache, t.result_hits,
          t.result_stale_drops, t.plan_hits, t.plan_misses, t.session_io ))
  in
  { queries_run; queries_from_cache; result_reuse_hits; result_stale_drops;
    plan_cache_hits; plan_cache_misses;
    cache = Vida_storage.Cache.stats t.ctx.Plugins.cache;
    io;
    structures_bytes = Structures.footprint t.ctx.Plugins.structures
  }

let checkpoint t =
  List.fold_left
    (fun n source ->
      if Structures.checkpoint_posmap t.ctx.Plugins.structures source then n + 1 else n)
    0
    (Registry.sources t.registry)

(* --- durable warm state: persist / report / retention ----------------

   [persist_state] writes every spillable piece of warm state through the
   state directory's degraded-aware publish: the plan cache (with its
   fingerprint stamps), the process-global breaker table (remaining
   cooldowns, not timestamps), the per-source quarantine ledgers (stamped
   with the fingerprint they were learned under), and the positional-map
   sidecars. Lock discipline: each subsystem is read under its OWN lock
   (instance 10, plugins 45, breaker 80) and released before the
   state-dir lock (85) is taken inside save — no nesting against rank
   order. Any OS failure flips the no-persist degraded mode and returns
   false; it never raises out of here and never touches query serving. *)

let persist_state t =
  match t.state with
  | None -> false
  | Some sd ->
    let plans =
      locked t (fun () ->
          Hashtbl.fold
            (fun key (plan, stamps, _) acc -> (key, stamps, plan) :: acc)
            t.plan_cache [])
    in
    let plan_frames =
      artifact_version "plans"
      :: List.map (fun e -> Marshal.to_string e []) plans
    in
    let ok_plans = Vida_raw.State_dir.persist sd ~name:"plans" plan_frames in
    let breaker_frames =
      artifact_version "breakers"
      :: List.map
           (fun (p : Governor.Breaker.persisted) -> Marshal.to_string p [])
           (Governor.Breaker.export ())
    in
    let ok_breakers =
      Vida_raw.State_dir.persist sd ~name:"breakers" breaker_frames
    in
    let ledgers =
      List.filter_map
        (fun (source : Source.t) ->
          let name = source.Source.name in
          match Plugins.ledger_export t.ctx name with
          | [], false, [] -> None
          | bad, structural, quarantined -> (
            match source_fingerprints t [ name ] with
            | [ (_, stamp) ] -> Some (name, stamp, bad, structural, quarantined)
            | _ -> None (* unfingerprintable: a ledger we cannot revalidate *)))
        (Registry.sources t.registry)
    in
    let ledger_frames =
      artifact_version "ledger"
      :: List.map (fun e -> Marshal.to_string e []) ledgers
    in
    let ok_ledger = Vida_raw.State_dir.persist sd ~name:"ledger" ledger_frames in
    let ok_structures =
      List.for_all
        (fun (source : Source.t) ->
          match Structures.checkpoint_posmap t.ctx.Plugins.structures source with
          | false -> true
          | true ->
            (match source.Source.path with
            | Some path ->
              Vida_raw.State_dir.record_structure sd
                ~digest:(Structures.sidecar_digest source) ~source:path
            | None -> ());
            true
          | exception Vida_error.Error (Vida_error.State_failure _ as e) ->
            Vida_raw.State_dir.note_persist_failure sd e;
            false)
        (Registry.sources t.registry)
    in
    ok_plans && ok_breakers && ok_ledger && ok_structures

(* post-query persistence for the serving layer: a cheap debounce so a
   query storm does not rewrite every artifact per request *)
let maybe_persist ?(min_interval_ms = 1000.) t =
  match t.state with
  | None -> false
  | Some _ ->
    let due =
      locked t (fun () ->
          let now = now_ms () in
          if now -. t.last_persist_ms >= min_interval_ms then (
            t.last_persist_ms <- now;
            true)
          else false)
    in
    if due then persist_state t else false

type state_report = {
  sr_dir : string;
  sr_degraded : bool;  (** persistence suspended after an OS failure *)
  sr_persists : int;
  sr_persist_failures : int;
  sr_warm_loads : int;
  sr_corrupt_quarantined : int;
  sr_quarantine_removed : int;
  sr_lock_reclaimed : bool;
  sr_plan_warm_hits : int;
  sr_structure_restores : int;
  sr_structure_rebuilds : int;
  sr_last_failure : string option;
}

let state_report t =
  Option.map
    (fun sd ->
      let r = Vida_raw.State_dir.report sd in
      { sr_dir = r.Vida_raw.State_dir.r_dir; sr_degraded = r.r_degraded;
        sr_persists = r.r_persists;
        sr_persist_failures = r.r_persist_failures;
        sr_warm_loads = r.r_warm_loads;
        sr_corrupt_quarantined = r.r_corrupt_quarantined;
        sr_quarantine_removed = r.r_quarantine_removed;
        sr_lock_reclaimed = r.r_lock_reclaimed;
        sr_plan_warm_hits = locked t (fun () -> t.plan_warm_hits);
        sr_structure_restores =
          Structures.warm_restores t.ctx.Plugins.structures;
        sr_structure_rebuilds = Structures.rebuilds t.ctx.Plugins.structures;
        sr_last_failure = r.r_last_failure })
    t.state

let state_dir t = Option.map Vida_raw.State_dir.dir t.state

let reset_state_degraded t =
  Option.iter Vida_raw.State_dir.reset_degraded t.state

let clean_quarantine ?max_age_s ?max_count t =
  match t.state with
  | None -> 0
  | Some sd -> Vida_raw.State_dir.clean_quarantine ?max_age_s ?max_count sd

let close_state t = Option.iter Vida_raw.State_dir.close t.state

let ctx t = t.ctx

(* --- concurrent serving sessions ---

   A [session] is one client's handle on a shared instance: queries
   submitted through it run under a governor session that out-of-band
   {!cancel} (another thread observing a client disconnect, an operator
   killing a tenant) can trip at any moment — the running query stops at
   its next cooperative poll, releases its budget charges and epoch pins,
   and surfaces [Cancelled] (exit 73). The instance itself is shared:
   catalog, caches, structures and feedback are all lock-guarded, so any
   number of sessions may submit concurrently from their own domains. *)

type session = {
  db : t;
  tenant : string;
  label : string;
  session_id : int;
  mutable running : Governor.session option;
      (* the governor session of the in-flight query, while one runs *)
  mutable closed : bool;
  s_lock : Vida_sync.Lock.t;
}

let session_counter = Atomic.make 0

let open_session ?(tenant = "default") ?(name = "session") t =
  { db = t; tenant; label = name;
    session_id = Atomic.fetch_and_add session_counter 1; running = None;
    closed = false;
    s_lock = Vida_sync.Lock.create ~rank:15 ~name:"vida.session" () }

let session_tenant s = s.tenant
let session_name s = s.label
let session_id s = s.session_id
let session_db s = s.db

let cancel s ~reason =
  Vida_sync.Lock.protect s.s_lock (fun () ->
      match s.running with
      | Some g -> Governor.cancel g ~reason
      | None -> ())

let close_session s =
  Vida_sync.Lock.protect s.s_lock (fun () ->
      s.closed <- true;
      match s.running with
      | Some g -> Governor.cancel g ~reason:"session closed"
      | None -> ())

let submit ?engine ?optimize ?reuse ?domains ?deadline_ms ?(syntax = `Comp) s
    text =
  (* deadline propagation: a client-supplied remaining budget can only
     tighten the instance's configured deadline, never widen it *)
  let limits =
    match deadline_ms with
    | None -> s.db.limits
    | Some d ->
      let d = Float.max 1. d in
      { s.db.limits with
        Governor.deadline_ms =
          Some
            (match s.db.limits.Governor.deadline_ms with
            | Some cur -> Float.min cur d
            | None -> d) }
  in
  let g = Governor.start ~limits ~name:s.label () in
  let admitted =
    Vida_sync.Lock.protect s.s_lock (fun () ->
        if s.closed then false
        else (
          s.running <- Some g;
          true))
  in
  if not admitted then
    Error
      (Data_error
         (Vida_error.Cancelled { source = s.label; reason = "session closed" }))
  else
    Fun.protect
      ~finally:(fun () ->
        Vida_sync.Lock.protect s.s_lock (fun () -> s.running <- None))
      (fun () ->
        Governor.with_session g (fun () ->
            run_text ?engine ?optimize ?reuse ?domains ~syntax s.db text))
