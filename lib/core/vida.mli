(** ViDa: just-in-time data virtualization (the paper's public API).

    A session is a "virtual database instance" over raw files: register
    CSV / JSON-lines / binary-array files (and in-memory collections), then
    launch queries in comprehension syntax or SQL. Nothing is loaded at
    registration; auxiliary structures (positional maps, semi-indexes) and
    caches build up as a side effect of the queries you run — you build the
    database by querying it (paper §2).

    {[
      let db = Vida.create () in
      Vida.csv db ~name:"Patients" ~path:"patients.csv";
      Vida.json db ~name:"BrainRegions" ~path:"regions.jsonl";
      match
        Vida.query db
          {|for { p <- Patients, b <- BrainRegions, p.id = b.id,
                  p.age > 60 } yield avg b.quality|}
      with
      | Ok r -> Format.printf "%a@." Vida_data.Value.pp r.value
      | Error e -> prerr_endline (Vida.error_to_string e)
    ]} *)

type t

(** Which executor answers queries: the just-in-time closure-compiling
    engine (default), or the generic interpreted engine kept for the
    paper's static-operator comparison. *)
type engine = Jit | Generic

(** [create ()] — an empty session. [cache_capacity] bounds ViDa's data
    caches in bytes (default 256 MB). [limits] are the per-query resource
    limits (deadline, memory budget, retry policy) every query launched
    from this instance runs under; default {!Vida_governor.Governor.unlimited}.
    [domains] is the worker-domain budget for parallel query regions,
    resolved as {!Vida_raw.Morsel.resolve}: the [VIDA_DOMAINS] environment
    override wins, else the request clamped to the hardware count, else
    the hardware count. With a budget of 1 every query runs on the
    sequential engines.

    [state_dir] opens a durable state directory ({!Vida_raw.State_dir})
    and boots warm from it: positional-map sidecars are routed there,
    spilled plan-cache entries, circuit-breaker state and quarantine
    ledgers are loaded — every artifact fingerprint-revalidated before
    use (stale → silently rebuilt, corrupt → quarantined, never trusted).
    Raises [Vida_error.State_failure] (exit 80) when a live process
    already holds the directory. *)
val create :
  ?cache_capacity:int -> ?domains:int ->
  ?limits:Vida_governor.Governor.limits -> ?state_dir:string -> unit -> t

(** [set_limits t limits] changes the per-query resource limits for
    subsequent queries (the CLI's [.timeout] / [.limit] commands). *)
val set_limits : t -> Vida_governor.Governor.limits -> unit

val limits : t -> Vida_governor.Governor.limits

(** [set_domains t d] sets the domain budget for subsequent queries,
    taking [d] literally (floored at 1, {e not} clamped to the hardware):
    deliberate oversubscription is allowed — differential tests on small
    machines, IO-bound scans. The [VIDA_DOMAINS] environment variable only
    affects budgets resolved at {!create} time, never this setter. *)
val set_domains : t -> int -> unit

(** [domains t] — the current domain budget. *)
val domains : t -> int

(** {1 Vectorized execution}

    Process-global knobs of the vectorized batch engine (the
    vectorized→closure→generic degradation ladder's top rung); see
    {!Vida_engine.Vector}. [set_batch_rows] sets the morsel-local batch
    stride (floored at 1; the [VIDA_BATCH_ROWS] environment variable sets
    the initial value); [set_vectorized false] disables the rung entirely
    ([VIDA_VECTOR=0] does the same at startup). *)

val set_batch_rows : int -> unit
val batch_rows : unit -> int
val set_vectorized : bool -> unit
val vectorized : unit -> bool

(** [vector_stats ()] — process-wide vectorization counters (kernels
    compiled, batches executed, rows, fallbacks with recent reasons), the
    serving layer's health report embeds these. *)
val vector_stats : unit -> Vida_engine.Vector.stats

(** {1 Registering raw sources}

    Registration snapshots the file and (for CSV/JSON without an explicit
    schema) samples it for schema inference; no data is loaded. *)

val csv :
  t -> name:string -> path:string -> ?delim:char -> ?header:bool ->
  ?schema:Vida_data.Schema.t -> unit -> unit

val json : t -> name:string -> path:string -> ?element:Vida_data.Ty.t -> unit -> unit

(** [xml t ~name ~path] registers an XML document; the root's child
    elements form the collection (data-oriented mapping, see
    {!Vida_raw.Xml}). *)
val xml : t -> name:string -> path:string -> ?element:Vida_data.Ty.t -> unit -> unit

val binarray : t -> name:string -> path:string -> unit
val inline : t -> name:string -> Vida_data.Value.t -> unit

(** [external_source t ~name ~element ~count ~produce] wraps a foreign
    system (e.g. a loaded DBMS) as a queryable source — the paper's
    Figure 2 places existing DBMSs under the virtualization layer, and §2.1
    notes their own access paths keep serving the generated code. *)
val external_source :
  t -> name:string -> element:Vida_data.Ty.t -> count:(unit -> int) ->
  produce:((Vida_data.Value.t -> unit) -> unit) -> unit

(** [bind_param t name v] binds a session parameter usable as a free
    variable in queries. *)
val bind_param : t -> string -> Vida_data.Value.t -> unit

val sources : t -> string list
val describe : t -> string -> Vida_catalog.Source.t option

(** {1 Querying} *)

type error =
  | Parse_error of string
  | Type_error of string
  | Engine_error of string
  | Data_error of Vida_error.t
      (** structured raw-data or resource-governance failure: parse error
          with source + offset, truncation, stale auxiliary structure,
          resource limit, I/O failure, deadline exceeded, memory budget
          exceeded, cooperative cancellation (see {!Vida_error}) *)

val error_to_string : error -> string

type result = {
  value : Vida_data.Value.t;
  plan : Vida_algebra.Plan.t;  (** the optimized plan that ran *)
  compile_ms : float;  (** parse + normalize + optimize + generate *)
  exec_ms : float;
  raw_io : Vida_raw.Io_stats.snapshot;  (** raw-file work this query did *)
  served_from_cache : bool;  (** no raw bytes were read *)
  from_result_cache : bool;
      (** the whole result was re-used from a previous identical plan
          (paper §5 result re-use); implies [served_from_cache] *)
  plan_from_cache : bool;
      (** the optimized plan was served by the instance plan cache —
          parse, typecheck, translation and optimization were skipped.
          Entries are validated against the catalog revision and every
          referenced source's fingerprint, so a schema change or file
          mutation forces a re-plan, never a stale plan. *)
  governor : Vida_governor.Governor.report;
      (** the query's resource-governance trace: wall time, cooperative
          polls, bytes charged against the memory budget, transient-IO
          retries and degradation fallbacks (JIT→Generic, sidecar→raw,
          epoch-repin) *)
  epochs : (string * string) list;
      (** the query's pinned epoch: for every referenced file-backed
          source, the encoded {!Vida_raw.Fingerprint} of the file version
          every served value was computed from. A source mutating
          mid-query raises [Source_changed] (surfaced as [Data_error])
          rather than ever mixing generations; the instance's
          {!Vida_governor.Governor.change_policy} decides whether the
          query transparently re-pins and retries first. *)
}

(** [query t text] runs a comprehension query end to end: parse → validate
    against the catalog → normalize → translate → optimize → generate the
    engine → execute. Stale sources referenced by the query are invalidated
    and re-registered first (paper §2.1). With [reuse] (default), the
    optimized plan is remembered per query text and served on repeats while
    the catalog and the referenced files are unchanged
    ({!result.plan_from_cache}). [domains] overrides the instance domain
    budget for this call only — the serving layer's degradation ladder runs
    queries with [~domains:1] under load. *)
val query :
  ?engine:engine -> ?optimize:bool -> ?reuse:bool -> ?domains:int -> t ->
  string -> (result, error) Result.t

(** [sql t text] is [query] for SQL input. *)
val sql :
  ?engine:engine -> ?optimize:bool -> ?reuse:bool -> ?domains:int -> t ->
  string -> (result, error) Result.t

(** [query_value t text] is [query] keeping only the value, raising
    [Failure] on error — for scripts and examples. *)
val query_value : ?engine:engine -> t -> string -> Vida_data.Value.t

(** [explain t text] shows normalization trace, both plans and cost
    estimates without executing. *)
val explain : t -> string -> (string, error) Result.t

(** [explain_sql t text] is [explain] for SQL input. *)
val explain_sql : t -> string -> (string, error) Result.t

(** {1 Static analysis} (verifier + linter, no execution)

    The plan verifier ({!Vida_analysis.Verifier}) re-derives
    well-typedness of every plan against the catalog; its participation in
    the query pipeline is controlled per session:
    - [Off] — no checking;
    - [Warn] (default) — plans are verified after translation and
      optimization, and every optimizer/parallel rewrite firing is checked
      pre/post; violations are recorded in {!verify_log};
    - [Strict] — a violation aborts the query with
      {!Vida_error.Plan_invalid} (surfaced as [Data_error]), the offending
      stage and rule named. *)

type verify = Off | Warn | Strict

val set_verify : t -> verify -> unit
val verify_mode : t -> verify

(** Verifier violations recorded so far under [Warn] (oldest first). *)
val verify_log : t -> string list

(** What {!analyze} reports for one query, without executing it. *)
type analysis = {
  analyzed_plan : Vida_algebra.Plan.t;  (** the optimized plan *)
  verify_error : Vida_error.t option;  (** [None] when the plan verifies *)
  findings : Vida_analysis.Lint.finding list;  (** most severe first *)
  declines : (string * string) list;
      (** [(position, reason)] for every operator expression the
          effect analysis declines for worker-domain execution — why the
          morsel engine would run (part of) this plan sequentially *)
}

(** [analyze t text] parses, typechecks, translates and optimizes [text],
    then runs the plan verifier and linter over the result — the CLI's
    [.analyze] / [--lint] entry. Nothing is executed and no raw data is
    touched beyond what registration already sampled. *)
val analyze : t -> string -> (analysis, error) Result.t

(** [analyze_sql t text] is [analyze] for SQL input. *)
val analyze_sql : t -> string -> (analysis, error) Result.t

(** Human-readable rendering of an {!analysis}. *)
val analysis_report : analysis -> string

(** [export t query ~format ~path] runs a query and materializes the
    result through an output plugin (paper §4.1: CSV for business reports,
    (binary) JSON for RESTful interfaces, ...). *)
val export :
  t -> string -> format:Vida_engine.Output.format -> path:string ->
  (result, error) Result.t

(** {1 Data cleaning} (paper §7)

    Attach a repair policy to a source: conversion failures and domain-rule
    violations can be nulled, repaired toward a dictionary, or mark the
    entry as problematic so subsequently generated code skips it. *)

val set_cleaning : t -> source:string -> Vida_cleaning.Policy.t -> unit

val cleaning_report : t -> source:string -> Vida_cleaning.Policy.report

(** Problematic entries discovered for a source so far. *)
val problematic_entries : t -> source:string -> int

(** [quarantine_report t ~source] — the raw spans rejected for [source]
    under a [Quarantine] cleaning policy: source name, byte offset and
    length into the raw file, and the rejection reason. Empty under other
    policies. *)
val quarantine_report :
  t -> source:string -> Vida_cleaning.Policy.quarantine_entry list

(** {1 Session introspection} *)

type stats = {
  queries_run : int;
  queries_from_cache : int;  (** answered without touching raw files *)
  result_reuse_hits : int;  (** answered from the result cache outright *)
  result_stale_drops : int;
      (** cached results dropped because a referenced file's fingerprint
          changed since the result was computed *)
  plan_cache_hits : int;  (** queries whose optimized plan was reused *)
  plan_cache_misses : int;
      (** lookups that re-planned (no entry, stale entry, or a catalog
          change since the entry was derived) *)
  cache : Vida_storage.Cache.stats;
  io : Vida_raw.Io_stats.snapshot;  (** cumulative for this session *)
  structures_bytes : int;  (** positional maps + semi-indexes *)
}

val stats : t -> stats

(** [checkpoint t] persists the session's built positional maps next to
    their data files ([<path>.vidx]); a later session's first query
    restores them instead of re-scanning — the virtual database outlives
    the process. Returns how many sidecars were written. *)
val checkpoint : t -> int

(** [invalidate t name] drops [name]'s caches and auxiliary structures and
    re-snapshots the file. *)
val invalidate : t -> string -> unit

(** {1 Durable warm state}

    Only meaningful on an instance created with [?state_dir]; without one
    every operation below is a no-op returning its zero. *)

(** [persist_state t] spills the warm state — plan cache with fingerprint
    stamps, circuit-breaker table (remaining cooldowns), per-source
    quarantine ledgers, positional-map sidecars — through the state
    directory's crash-safe publish. Returns [false] (and flips the
    no-persist degraded mode) on an OS failure; never raises, never
    affects query serving. *)
val persist_state : t -> bool

(** Debounced {!persist_state} for post-query hooks: persists at most
    once per [min_interval_ms] (default 1000). *)
val maybe_persist : ?min_interval_ms:float -> t -> bool

type state_report = {
  sr_dir : string;
  sr_degraded : bool;  (** persistence suspended after an OS failure *)
  sr_persists : int;  (** artifact publishes completed *)
  sr_persist_failures : int;
  sr_warm_loads : int;  (** artifacts served CRC-valid from disk *)
  sr_corrupt_quarantined : int;  (** corrupt files moved to [*.corrupt] *)
  sr_quarantine_removed : int;  (** [*.corrupt] files GC'd *)
  sr_lock_reclaimed : bool;  (** a stale holder's lockfile was reclaimed *)
  sr_plan_warm_hits : int;  (** plans served from the state directory *)
  sr_structure_restores : int;  (** posmaps restored from sidecars *)
  sr_structure_rebuilds : int;  (** posmaps rebuilt from raw files *)
  sr_last_failure : string option;
}

(** [None] without a state directory. *)
val state_report : t -> state_report option

val state_dir : t -> string option

(** Re-enable persistence after the operator has made room (the
    degraded flag and failure counters are part of {!state_report} and
    the serving layer's health payload). *)
val reset_state_degraded : t -> unit

(** Remove quarantined [*.corrupt] files from the state directory
    (defaults purge all); returns how many were removed. Backs the CLI's
    [.quarantine clean]. *)
val clean_quarantine : ?max_age_s:float -> ?max_count:int -> t -> int

(** Release the state directory's single-instance lock. *)
val close_state : t -> unit

(** Direct access for benchmarks and tests. *)
val ctx : t -> Vida_engine.Plugins.ctx

(** {1 Concurrent serving sessions}

    One {!t} instance serves many concurrent clients: the catalog, data
    caches, auxiliary structures, result/plan caches and feedback tables
    are all internally lock-guarded. A [session] is one client's handle —
    it carries the tenant identity the admission controller accounts
    against, and makes the in-flight query cancellable from another
    thread (the serving layer cancels on client disconnect). Submissions
    on {e distinct} sessions may run truly concurrently from separate
    domains; a given session runs one query at a time. *)

type session

(** [open_session t] — a new client handle on the shared instance.
    [tenant] (default ["default"]) groups sessions for per-tenant
    admission caps; [name] labels governor reports and error sources. *)
val open_session : ?tenant:string -> ?name:string -> t -> session

val session_tenant : session -> string
val session_name : session -> string

(** [session_id s] — unique per process, for fair-share accounting and
    log correlation. *)
val session_id : session -> int

val session_db : session -> t

(** [submit s text] runs one query on this session (syntax [`Comp] or
    [`Sql], default comprehension). The query runs under a fresh governor
    session started from the instance limits, registered with [s] so a
    concurrent {!cancel} reaches it. On a closed session, returns
    [Cancelled] immediately. [deadline_ms] is the caller's remaining time
    budget (deadline propagation from a resilient client): it can only
    tighten the instance's configured deadline, never widen it. *)
val submit :
  ?engine:engine -> ?optimize:bool -> ?reuse:bool -> ?domains:int ->
  ?deadline_ms:float -> ?syntax:[ `Comp | `Sql ] -> session -> string ->
  (result, error) Result.t

(** [cancel s ~reason] trips the in-flight query's cancellation token (a
    no-op when none is running); the query stops at its next cooperative
    poll, releasing budget charges and epoch pins, and returns
    [Data_error (Cancelled _)] to its submitter. *)
val cancel : session -> reason:string -> unit

(** [close_session s] cancels any in-flight query and refuses future
    submissions. Idempotent. *)
val close_session : session -> unit
