open Vida_data

type error = Vida_error.t

let pp_error = Vida_error.pp

let err context fmt = Vida_error.type_invalid ~context fmt

module Env = Map.Make (String)

let unify_or_err ctx a b =
  match Ty.unify a b with
  | Some t -> t
  | None -> err ctx "cannot unify %s with %s" (Ty.to_string a) (Ty.to_string b)

(* Result type of a comprehension / singleton for monoid [m] with element
   type [elt]. *)
let monoid_result ctx (m : Monoid.t) (elt : Ty.t) =
  match m with
  | Monoid.Prim (Monoid.Sum | Monoid.Prod) ->
    if Ty.is_numeric elt then elt
    else err ctx "monoid %s needs numeric elements, got %s" (Monoid.name m) (Ty.to_string elt)
  | Monoid.Prim Monoid.Count -> Ty.Int
  | Monoid.Prim (Monoid.Max | Monoid.Min) -> elt
  | Monoid.Prim Monoid.Avg ->
    if Ty.is_numeric elt then Ty.Float
    else err ctx "avg needs numeric elements, got %s" (Ty.to_string elt)
  | Monoid.Prim Monoid.Median -> elt
  | Monoid.Prim (Monoid.Top _ | Monoid.Bottom _) -> Ty.Coll (Ty.List, elt)
  | Monoid.Prim (Monoid.All | Monoid.Some_) ->
    if Ty.equal elt Ty.Bool || Ty.equal elt Ty.Any then Ty.Bool
    else err ctx "%s needs boolean elements, got %s" (Monoid.name m) (Ty.to_string elt)
  | Monoid.Coll k -> Ty.Coll (k, elt)

(* The carrier type of a primitive monoid's accumulator, for checking
   [Merge]: merging two already-accumulated values. *)
let merge_result ctx (m : Monoid.t) (t : Ty.t) =
  match m with
  | Monoid.Prim (Monoid.Sum | Monoid.Prod | Monoid.Avg) ->
    if Ty.is_numeric t then t
    else err ctx "monoid %s merges numeric values, got %s" (Monoid.name m) (Ty.to_string t)
  | Monoid.Prim Monoid.Count ->
    let _ = unify_or_err ctx t Ty.Int in
    Ty.Int
  | Monoid.Prim (Monoid.All | Monoid.Some_) ->
    let _ = unify_or_err ctx t Ty.Bool in
    Ty.Bool
  | Monoid.Prim (Monoid.Max | Monoid.Min | Monoid.Median) -> t
  | Monoid.Prim (Monoid.Top _ | Monoid.Bottom _) ->
    unify_or_err ctx t (Ty.Coll (Ty.List, Ty.Any))
  | Monoid.Coll k -> unify_or_err ctx t (Ty.Coll (k, Ty.Any))

let rec infer_t env (e : Expr.t) : Ty.t =
  let ctx () = Expr.to_string e in
  match e with
  | Expr.Const v -> Value.typeof v
  | Expr.Var x -> (
    match Env.find_opt x env with
    | Some t -> t
    | None -> err (ctx ()) "unbound variable %s" x)
  | Expr.Proj (e', a) -> (
    let t = infer_t env e' in
    match Ty.field t a with
    | Some ft -> ft
    | None -> err (ctx ()) "type %s has no field %S" (Ty.to_string t) a)
  | Expr.Record fields ->
    let rec dup = function
      | [] -> ()
      | (n, _) :: rest ->
        if List.mem_assoc n rest then err (ctx ()) "duplicate record field %S" n
        else dup rest
    in
    dup fields;
    Ty.Record (List.map (fun (n, e) -> (n, infer_t env e)) fields)
  | Expr.If (c, t, f) ->
    let tc = infer_t env c in
    let _ = unify_or_err (ctx ()) tc Ty.Bool in
    unify_or_err (ctx ()) (infer_t env t) (infer_t env f)
  | Expr.BinOp (op, a, b) -> (
    let ta = infer_t env a and tb = infer_t env b in
    match op with
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod ->
      if Ty.is_numeric ta && Ty.is_numeric tb then
        unify_or_err (ctx ()) ta tb
      else err (ctx ()) "arithmetic over %s, %s" (Ty.to_string ta) (Ty.to_string tb)
    | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge ->
      let _ = unify_or_err (ctx ()) ta tb in
      Ty.Bool
    | Expr.And | Expr.Or ->
      let _ = unify_or_err (ctx ()) ta Ty.Bool in
      let _ = unify_or_err (ctx ()) tb Ty.Bool in
      Ty.Bool
    | Expr.Concat ->
      let _ = unify_or_err (ctx ()) ta Ty.String in
      let _ = unify_or_err (ctx ()) tb Ty.String in
      Ty.String)
  | Expr.UnOp (Expr.Not, e') ->
    let _ = unify_or_err (ctx ()) (infer_t env e') Ty.Bool in
    Ty.Bool
  | Expr.UnOp (Expr.Neg, e') ->
    let t = infer_t env e' in
    if Ty.is_numeric t then t
    else err (ctx ()) "negation of %s" (Ty.to_string t)
  | Expr.Lambda (x, body) ->
    (* gradual: parameter is Any, result unexamined *)
    let _ = infer_t (Env.add x Ty.Any env) body in
    Ty.Any
  | Expr.Apply (f, a) ->
    let _ = infer_t env f and _ = infer_t env a in
    Ty.Any
  | Expr.Zero m -> monoid_result (ctx ()) m Ty.Any
  | Expr.Singleton (m, e') -> monoid_result (ctx ()) m (infer_t env e')
  | Expr.Merge (m, a, b) ->
    let t = unify_or_err (ctx ()) (infer_t env a) (infer_t env b) in
    merge_result (ctx ()) m t
  | Expr.Index (e', idxs) -> (
    List.iter
      (fun i ->
        let t = infer_t env i in
        if not (Ty.is_numeric t) then
          err (ctx ()) "array index of type %s" (Ty.to_string t))
      idxs;
    let t = infer_t env e' in
    match t with
    | Ty.Coll (Ty.Array, elt) -> elt
    | Ty.Any -> Ty.Any
    | t -> err (ctx ()) "indexing non-array type %s" (Ty.to_string t))
  | Expr.Comp (m, head, quals) ->
    let env =
      List.fold_left
        (fun env q ->
          match q with
          | Expr.Gen (v, src) -> (
            let ts = infer_t env src in
            match ts with
            | Ty.Coll (k, elt) ->
              if not (Monoid.accepts ~acc:m ~gen:k) then
                err (ctx ())
                  "generator %s <- ... draws from a %s into non-conforming monoid %s"
                  v (Ty.coll_name k) (Monoid.name m);
              Env.add v elt env
            | Ty.Any -> Env.add v Ty.Any env
            | t ->
              err (ctx ()) "generator %s <- ... over non-collection type %s" v
                (Ty.to_string t))
          | Expr.Bind (v, e') -> Env.add v (infer_t env e') env
          | Expr.Pred p ->
            let _ = unify_or_err (ctx ()) (infer_t env p) Ty.Bool in
            env)
        env quals
    in
    monoid_result (ctx ()) m (infer_t env head)

let env_of_bindings bindings =
  List.fold_left (fun env (x, t) -> Env.add x t env) Env.empty bindings

let infer_exn bindings e = infer_t (env_of_bindings bindings) e

(* Total: a structured error is returned, and any stray exception from the
   data layer (malformed constants, pathological types) is converted rather
   than allowed to escape. *)
let infer bindings e =
  match infer_t (env_of_bindings bindings) e with
  | t -> Ok t
  | exception Vida_error.Error err -> Error err
  | exception Stack_overflow ->
    Error
      (Vida_error.Type_invalid
         { context = "typecheck"; reason = "expression too deep to check" })
  | exception exn ->
    Error
      (Vida_error.Type_invalid
         { context = "typecheck"; reason = Printexc.to_string exn })

let check bindings e = Result.map (fun _ -> ()) (infer bindings e)
