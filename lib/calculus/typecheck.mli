(** Gradual type validation for comprehension queries.

    ViDa validates user queries against the catalog's source descriptions
    (paper §3.1) before generating an engine for them. Raw sources may be
    only partially described, so checking is gradual: [Ty.Any] unifies with
    everything and defers the check to runtime.

    Beyond datatype errors, the checker enforces the calculus' monoid
    well-formedness condition (Fegaras & Maier): a comprehension accumulating
    into monoid [⊕] may only draw generators from collection kinds whose
    monoid is "at most" [⊕] — set generators need an idempotent accumulator,
    bag generators a commutative one.

    Failures are reported through the system-wide taxonomy as
    {!Vida_error.Type_invalid}; checking is {e total}: no exception escapes
    [infer]/[check] whatever the input expression. *)

type error = Vida_error.t

val pp_error : Format.formatter -> error -> unit

(** [infer env e] infers the type of [e], where [env] gives the types of
    free variables (typically the catalog's registered sources). Lambdas and
    applications are typed gradually as [Any]. *)
val infer : (string * Vida_data.Ty.t) list -> Expr.t -> (Vida_data.Ty.t, error) result

(** [check env e] is [infer] keeping only success. *)
val check : (string * Vida_data.Ty.t) list -> Expr.t -> (unit, error) result

(** [infer_exn env e] is [infer] raising {!Vida_error.Error} — for callers
    already running under a {!Vida_error} handler (the plan verifier). *)
val infer_exn : (string * Vida_data.Ty.t) list -> Expr.t -> Vida_data.Ty.t
