(** Effect and purity analysis over calculus expressions.

    The morsel-parallel engine compiles scalar expressions into closures
    that run on worker domains. An expression is {e worker-safe} when its
    compiled form cannot reach shared mutable state: no nested
    comprehension (subquery pipelines own feedback/flush state), no
    lambda/application (the interpreter fallback materializes every
    registered source), and no free variable beyond the plan's own binders
    and the immutable session parameters (an unbound variable lazily
    materializes a registry source inside the worker).

    This module replaces the engine's syntactic [worker_safe] gate with a
    summary-based verdict that names the offending subterm — every decline
    carries a machine-readable {!reason}.

    It also states the {e monoid-law obligations} a parallel fold relies
    on: partial accumulators may be merged in any order only for
    commutative monoids; everything else (list/array concatenation)
    requires merging in source (morsel-index) order. *)

(** Why an expression was declined for worker execution. *)
type reason =
  | Subquery of string  (** nested comprehension; rendered subterm *)
  | Lambda of string
  | Application of string
  | Unbound of string  (** free variable resolving to a registry source *)

val reason_to_string : reason -> string

(** Effect summary of one expression. *)
type summary = {
  reads : string list;  (** free variables consulted (sorted, unique) *)
  allocates : bool;  (** builds records, collections or merges *)
  subqueries : int;  (** nested comprehensions *)
  lambdas : int;
  applications : int;
}

val analyze : Vida_calculus.Expr.t -> summary

(** [pure s] — no subqueries, lambdas or applications: evaluation cannot
    observe or mutate engine state beyond reading its environment. *)
val pure : summary -> bool

(** [worker_verdict ~bound ~params e] — [Ok ()] when [e] may be compiled
    and run on a worker domain given the plan binders [bound] and session
    parameter names [params]; otherwise the first offending reason. The
    verdict is no less permissive than the historical syntactic gate: any
    expression that gate accepted is accepted here. *)
val worker_verdict :
  bound:string list -> params:string list -> Vida_calculus.Expr.t ->
  (unit, reason) result

(** {1 Monoid-law obligations} *)

(** Algebraic laws of a monoid, as the merge planner needs them. All the
    calculus' monoids are associative by construction (floating-point
    [sum]/[avg] only up to rounding); identity is {!Vida_calculus.Monoid.zero}. *)
type laws = {
  commutative : bool;
  associative : bool;
  idempotent : bool;
  identity : Vida_data.Value.t;
}

val laws : Vida_calculus.Monoid.t -> laws

(** How partial (per-morsel) accumulators of a monoid may be merged. *)
type merge_requirement =
  | Any_order  (** commutative: partials combine in any order *)
  | Source_order
      (** non-commutative (list/array concatenation): partials must be
          merged in morsel = source order *)

val merge_requirement : Vida_calculus.Monoid.t -> merge_requirement

(** [check_merge m ~strategy] — whether a merge strategy discharges the
    monoid's obligation: [`Ordered] (indexed, source-order) merges satisfy
    every monoid; [`Unordered] merges only commutative ones. *)
val check_merge :
  Vida_calculus.Monoid.t -> strategy:[ `Ordered | `Unordered ] ->
  (unit, string) result
