open Vida_data
open Vida_calculus
open Vida_algebra

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let rank = function Info -> 0 | Warning -> 1 | Error -> 2

type finding = { id : string; severity : severity; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s: %s" f.id (severity_name f.severity) f.message

let catalog =
  [ ("P01", Warning, "cartesian product: no predicate relates the two sides");
    ("P02", Warning, "filter not pushed below the operator it could descend past");
    ("P03", Warning, "wide materialization pollutes the value caches");
    ("P04", Error, "unknown source or parameter referenced");
    ("P05", Warning, "source file changed on disk: sidecar/fingerprint staleness hazard");
    ("P06", Info, "trivially-true filter");
    ("P07", Info, "non-commutative fold: result depends on source order");
    (* kernel-safety obligations over the vectorized rung, discharged
       dynamically on every fold_chain_vectorized dispatch in sanitize
       mode (see Kernel and Vida_sync) *)
    ("P08", Error, "selection vector must be sorted, unique and in-bounds per batch");
    ("P09", Error, "kernel scratch state must not escape its morsel");
    ("P10", Error, "vectorized fold merge order must satisfy merge_requirement") ]

let wide_threshold = 12

let finding id message =
  let severity =
    match List.find_opt (fun (i, _, _) -> String.equal i id) catalog with
    | Some (_, s, _) -> s
    | None -> Warning
  in
  { id; severity; message }

let subset vars allowed = List.for_all (fun v -> List.mem v allowed) vars

(* width of one environment record: record-typed binders contribute their
   field count, everything else one slot *)
let env_width gamma =
  List.fold_left
    (fun acc (_, t) ->
      acc + (match t with Ty.Record fs -> List.length fs | _ -> 1))
    0 gamma

let mentions_both pred lvars rvars =
  let fv = Expr.free_vars pred in
  List.exists (fun v -> List.mem v lvars) fv
  && List.exists (fun v -> List.mem v rvars) fv

let rec sources_of (p : Plan.t) =
  (match p with
  | Plan.Source { expr = Expr.Var name; _ } -> [ name ]
  | _ -> [])
  @ List.concat_map sources_of (Plan.children p)

let plan ?env ?(stale = []) (p : Plan.t) =
  let out = ref [] in
  let emit id fmt = Format.kasprintf (fun m -> out := finding id m :: !out) fmt in
  let plan_vars = Plan.bound_vars p in
  (* P01: carry the selection predicates seen on the way down; a Product
     with no enclosing or sibling predicate spanning both sides is a
     cartesian scan *)
  let rec walk preds (p : Plan.t) =
    (match p with
    | Plan.Product { left; right } ->
      let lv = Plan.bound_vars left and rv = Plan.bound_vars right in
      if not (List.exists (fun pr -> mentions_both pr lv rv) preds) then
        emit "P01" "cartesian product of {%s} and {%s}: no join predicate"
          (String.concat ", " lv) (String.concat ", " rv)
    | Plan.Join { pred; left; right } ->
      let lv = Plan.bound_vars left and rv = Plan.bound_vars right in
      if not (List.exists (fun pr -> mentions_both pr lv rv) (pred :: preds))
      then
        emit "P01" "join of {%s} and {%s} degenerates to a cartesian product"
          (String.concat ", " lv) (String.concat ", " rv)
    | Plan.Select { pred; child } -> (
      (match pred with
      | Expr.Const (Value.Bool true) ->
        emit "P06" "trivially-true filter"
      | _ -> ());
      let fv =
        List.filter (fun v -> List.mem v plan_vars) (Expr.free_vars pred)
      in
      match child with
      | Plan.Product { left; right } | Plan.Join { left; right; _ } ->
        let lv = Plan.bound_vars left and rv = Plan.bound_vars right in
        if fv <> [] && (subset fv lv || subset fv rv) then
          emit "P02"
            "filter on %s sits above a join but touches only one side"
            (String.concat ", " fv)
      | Plan.Map { var; _ } when not (List.mem var fv) ->
        emit "P02" "filter on %s not pushed past the binding of %s"
          (String.concat ", " fv) var
      | _ -> ())
    | Plan.Reduce { monoid; _ } | Plan.Nest { monoid; _ } ->
      if not (Monoid.commutative monoid) then
        emit "P07"
          "fold into non-commutative monoid %s: result depends on source order"
          (Monoid.name monoid)
    | Plan.Unit | Plan.Source _ | Plan.Map _ | Plan.Unnest _ -> ());
    let preds =
      match p with
      | Plan.Select { pred; _ } -> pred :: preds
      | Plan.Join { pred; _ } -> pred :: preds
      | _ -> preds
    in
    List.iter (walk preds) (Plan.children p)
  in
  walk [] p;
  List.iter
    (fun name ->
      if List.mem name stale then
        emit "P05"
          "source %s changed on disk since registration: positional maps, \
           semi-indexes and cached fingerprints are stale until first access \
           re-registers it"
          name)
    (sources_of p);
  (match env with
  | None -> ()
  | Some env ->
    List.iter
      (fun v ->
        if not (List.mem_assoc v env) then
          emit "P04" "unknown source or parameter %s" v)
      (Plan.free_vars p);
    (* P03 only applies to bare streams: a Reduce/Nest root folds the
       stream away instead of materializing it *)
    (match p with
    | Plan.Reduce _ | Plan.Nest _ -> ()
    | stream -> (
      match Verifier.environment ~env stream with
      | gamma ->
        let w = env_width gamma in
        if w > wide_threshold then
          emit "P03"
            "materializing %d-field environments (threshold %d): decoded \
             columns will evict hotter cache entries"
            w wide_threshold
      | exception _ -> () (* the verifier reports typing problems *))));
  List.stable_sort
    (fun a b -> compare (rank b.severity) (rank a.severity))
    (List.rev !out)

let max_severity findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.severity
      | Some s -> Some (if rank f.severity > rank s then f.severity else s))
    None findings
