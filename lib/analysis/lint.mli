(** Plan linter: advisory checks over optimized algebra plans.

    Unlike the {!Verifier} (which enforces invariants), lints flag plans
    that will execute correctly but badly: cartesian products, filters the
    optimizer left above a join, wide materializations that pollute the
    value caches, and staleness hazards on the raw files behind a source.

    Catalog (stable IDs):
    - [P01] {e cartesian-product} (warning) — a [Product] with no
      enclosing predicate relating its two sides scans |L|×|R| pairs.
    - [P02] {e filter-not-pushed} (warning) — a [Select] sits directly
      above a join/product/map it could descend past, so rows are
      materialized before being discarded.
    - [P03] {e wide-materialization} (warning) — a bare stream plan
      escapes whole environments wider than {!wide_threshold} fields;
      the decoded columns evict hotter entries from the cache.
    - [P04] {e unknown-source} (error) — the plan references a variable
      that is neither a registered source nor a session parameter.
    - [P05] {e stale-source} (warning) — a referenced source's backing
      file changed since registration; its sidecars/fingerprints are
      staleness hazards until re-registration.
    - [P06] {e trivial-filter} (info) — a constant-true predicate.
    - [P07] {e order-sensitive-fold} (info) — the fold monoid is
      non-commutative, so the result depends on source order; the
      parallel engine must (and does) merge partials in morsel order.

    Kernel-safety obligations over the vectorized rung ([P08]-[P10]) are
    catalogued here but discharged {e dynamically}: {!Kernel} provides
    the pure checks, and the engine runs them on every
    [fold_chain_vectorized] dispatch when the concurrency sanitizer
    ([Vida_sync], [VIDA_SANITIZE]) is active. Failures surface as
    ["kernel-obligation"] sync findings.
    - [P08] {e selection-vector-integrity} (error) — each batch's
      selection vector must be strictly increasing (sorted, unique) and
      in-bounds for the batch.
    - [P09] {e scratch-escape} (error) — a kernel instance's scratch
      buffers are single-morsel: the instance must run on the domain
      that instantiated it.
    - [P10] {e merge-order} (error) — merging vectorized partials must
      satisfy the monoid's [merge_requirement] (ordered merge for
      non-commutative monoids). *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type finding = { id : string; severity : severity; message : string }

val pp_finding : Format.formatter -> finding -> unit

(** [(id, severity, one-line description)] for every lint. *)
val catalog : (string * severity * string) list

(** Environment-record width beyond which a bare materialization is
    flagged as [P03]. *)
val wide_threshold : int

(** [plan ?env ?stale p] — findings for [p], most severe first. [env]
    enables the width and unknown-source checks; [stale] names sources
    whose backing files are known to have changed. *)
val plan :
  ?env:(string * Vida_data.Ty.t) list -> ?stale:string list ->
  Vida_algebra.Plan.t -> finding list

(** The highest severity among [findings] ([None] when clean). *)
val max_severity : finding list -> severity option
