open Vida_calculus

type reason =
  | Subquery of string
  | Lambda of string
  | Application of string
  | Unbound of string

let reason_to_string = function
  | Subquery s -> "subquery owns pipeline state: " ^ s
  | Lambda s -> "lambda forces interpreter fallback: " ^ s
  | Application s -> "application forces interpreter fallback: " ^ s
  | Unbound v -> "free variable " ^ v ^ " would materialize a source in a worker"

type summary = {
  reads : string list;
  allocates : bool;
  subqueries : int;
  lambdas : int;
  applications : int;
}

module Sset = Set.Make (String)

let analyze e =
  let allocates = ref false in
  let subqueries = ref 0 in
  let lambdas = ref 0 in
  let applications = ref 0 in
  (* free_vars already respects binder shadowing; the walk below only
     counts structural effects, so it need not track scopes itself *)
  let rec go (e : Expr.t) =
    match e with
    | Expr.Const _ | Expr.Var _ -> ()
    | Expr.Zero _ -> allocates := true
    | Expr.Proj (e, _) | Expr.UnOp (_, e) -> go e
    | Expr.Singleton (_, e) ->
      allocates := true;
      go e
    | Expr.Record fs ->
      allocates := true;
      List.iter (fun (_, e) -> go e) fs
    | Expr.If (a, b, c) -> go a; go b; go c
    | Expr.BinOp (_, a, b) -> go a; go b
    | Expr.Merge (_, a, b) ->
      allocates := true;
      go a;
      go b
    | Expr.Lambda (_, body) ->
      incr lambdas;
      go body
    | Expr.Apply (f, a) ->
      incr applications;
      go f;
      go a
    | Expr.Index (e, idxs) -> go e; List.iter go idxs
    | Expr.Comp (_, head, quals) ->
      incr subqueries;
      allocates := true;
      go head;
      List.iter
        (function
          | Expr.Gen (_, e) | Expr.Bind (_, e) | Expr.Pred e -> go e)
        quals
  in
  go e;
  { reads = Sset.elements (Sset.of_list (Expr.free_vars e));
    allocates = !allocates;
    subqueries = !subqueries;
    lambdas = !lambdas;
    applications = !applications }

let pure s = s.subqueries = 0 && s.lambdas = 0 && s.applications = 0

(* The verdict walks the term itself (rather than reusing [analyze]) so the
   declined subterm can be named in the reason. *)
let worker_verdict ~bound ~params e =
  let exception Declined of reason in
  let rec go (e : Expr.t) =
    match e with
    | Expr.Comp _ -> raise (Declined (Subquery (Expr.to_string e)))
    | Expr.Lambda _ -> raise (Declined (Lambda (Expr.to_string e)))
    | Expr.Apply _ -> raise (Declined (Application (Expr.to_string e)))
    | Expr.Const _ | Expr.Var _ | Expr.Zero _ -> ()
    | Expr.Proj (e, _) | Expr.UnOp (_, e) | Expr.Singleton (_, e) -> go e
    | Expr.Record fs -> List.iter (fun (_, e) -> go e) fs
    | Expr.If (a, b, c) -> go a; go b; go c
    | Expr.BinOp (_, a, b) | Expr.Merge (_, a, b) -> go a; go b
    | Expr.Index (e, idxs) -> go e; List.iter go idxs
  in
  match go e with
  | () -> (
    match
      List.find_opt
        (fun v -> not (List.mem v bound || List.mem v params))
        (Expr.free_vars e)
    with
    | Some v -> Error (Unbound v)
    | None -> Ok ())
  | exception Declined r -> Error r

type laws = {
  commutative : bool;
  associative : bool;
  idempotent : bool;
  identity : Vida_data.Value.t;
}

let laws m =
  { commutative = Monoid.commutative m;
    associative = true;
    idempotent = Monoid.idempotent m;
    identity = Monoid.zero m }

type merge_requirement = Any_order | Source_order

let merge_requirement m =
  if Monoid.commutative m then Any_order else Source_order

let check_merge m ~strategy =
  match strategy, merge_requirement m with
  | `Ordered, _ | `Unordered, Any_order -> Ok ()
  | `Unordered, Source_order ->
    Error
      (Printf.sprintf
         "monoid %s is not commutative: partial merges must follow source order"
         (Monoid.name m))
