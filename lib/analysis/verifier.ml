open Vida_data
open Vida_calculus
open Vida_algebra

type env = (string * Ty.t) list

exception Fail of string

let fail fmt = Format.kasprintf (fun s -> raise (Fail s)) fmt

(* Scalar typing under externals + the derived schema; schema entries are
   appended so plan binders shadow registered sources of the same name,
   exactly as the engines resolve them. *)
let scalar_ty externals gamma (e : Expr.t) =
  Typecheck.infer_exn (externals @ gamma) e

let check_bool externals gamma ~op (e : Expr.t) =
  let t = scalar_ty externals gamma e in
  match Ty.unify t Ty.Bool with
  | Some _ -> ()
  | None ->
    fail "%s predicate %s has type %s, expected bool" op (Expr.to_string e)
      (Ty.to_string t)

let bind ~op gamma (var, ty) =
  if List.mem_assoc var gamma then fail "%s rebinds variable %s" op var
  else gamma @ [ (var, ty) ]

let element ~op ~var t =
  match t with
  | Ty.Coll (_, elt) -> elt
  | Ty.Any -> Ty.Any
  | t ->
    fail "%s draws %s from non-collection type %s" op var (Ty.to_string t)

(* The type a Reduce/Nest fold produces: [Singleton (m, head)] has exactly
   the monoid's result type for [head]'s element type, so the expression
   checker is reused as the single source of monoid typing rules. *)
let fold_ty externals gamma monoid head =
  scalar_ty externals gamma (Expr.Singleton (monoid, head))

let rec environment ~env:externals (p : Plan.t) : env =
  match p with
  | Plan.Unit -> []
  | Plan.Source { var; expr } ->
    [ (var, element ~op:"Source" ~var (scalar_ty externals [] expr)) ]
  | Plan.Select { pred; child } ->
    let gamma = environment ~env:externals child in
    check_bool externals gamma ~op:"Select" pred;
    gamma
  | Plan.Map { var; expr; child } ->
    let gamma = environment ~env:externals child in
    bind ~op:"Map" gamma (var, scalar_ty externals gamma expr)
  | Plan.Product { left; right } ->
    let gl = environment ~env:externals left in
    let gr = environment ~env:externals right in
    List.fold_left (bind ~op:"Product") gl gr
  | Plan.Join { pred; left; right } ->
    let gl = environment ~env:externals left in
    let gr = environment ~env:externals right in
    let gamma = List.fold_left (bind ~op:"Join") gl gr in
    check_bool externals gamma ~op:"Join" pred;
    gamma
  | Plan.Unnest { var; path; outer = _; child } ->
    let gamma = environment ~env:externals child in
    bind ~op:"Unnest" gamma
      (var, element ~op:"Unnest" ~var (scalar_ty externals gamma path))
  | Plan.Reduce _ ->
    (* a nested Reduce produces one scalar, not environments (its binding
       contribution is empty, as [Plan.bound_vars] states) *)
    ignore (result_ty ~env:externals p);
    []
  | Plan.Nest { monoid; var; head; keys; child } ->
    let gamma = environment ~env:externals child in
    let keyts = List.map (fun (n, k) -> (n, scalar_ty externals gamma k)) keys in
    let folded = fold_ty externals gamma monoid head in
    List.fold_left (bind ~op:"Nest") [] (keyts @ [ (var, folded) ])

and result_ty ~env:externals (p : Plan.t) : Ty.t =
  match p with
  | Plan.Reduce { monoid; head; child } ->
    let gamma = environment ~env:externals child in
    fold_ty externals gamma monoid head
  | p ->
    let gamma = environment ~env:externals p in
    (* environments are name-addressed: binder order is presentational, so
       the result type is canonicalized — a rewrite that merely permutes
       binders (e.g. a join build-side swap) preserves it *)
    let gamma = List.sort (fun (a, _) (b, _) -> String.compare a b) gamma in
    Ty.Coll (Ty.Bag, Ty.Record gamma)

let run ?(stage = "plan") ?rule f =
  match f () with
  | v -> Ok v
  | exception Fail reason -> Error (Vida_error.Plan_invalid { stage; rule; reason })
  | exception Vida_error.Error (Vida_error.Type_invalid { context; reason }) ->
    Error
      (Vida_error.Plan_invalid
         { stage; rule; reason = Printf.sprintf "%s (in %s)" reason context })
  | exception Vida_error.Error e -> Error e

let infer ?stage ?rule ~env p = run ?stage ?rule (fun () -> result_ty ~env p)

let verify ?stage ?rule ~env p =
  run ?stage ?rule (fun () ->
      (match Plan.validate p with Ok () -> () | Error msg -> fail "%s" msg);
      ignore (result_ty ~env p))

let verify_exn ?stage ?rule ~env p =
  match verify ?stage ?rule ~env p with
  | Ok () -> ()
  | Error e -> Vida_error.error e

let check_rewrite ~stage ~rule ~env ~before ~after =
  (* a broken [before] predates this firing: report it against the stage
     so the diagnostic does not blame an innocent rule *)
  match verify ~stage ~env before with
  | Error _ as e -> e
  | Ok () ->
    match verify ~stage ~rule ~env after with
    | Error _ as e -> e
    | Ok () ->
      match run ~stage ~rule (fun () ->
          let tb = result_ty ~env before in
          let ta = result_ty ~env after in
          (match Ty.unify tb ta with
          | Some _ -> ()
          | None ->
            fail "rewrite changed the result type from %s to %s"
              (Ty.to_string tb) (Ty.to_string ta));
          let fb = Plan.free_vars before and fa = Plan.free_vars after in
          List.iter
            (fun v ->
              if not (List.mem v fb) then
                fail "rewrite introduced free variable %s" v)
            fa)
      with
      | Ok () -> Ok ()
      | Error _ as e -> e
