(** Plan verifier: typed-IR invariant checking for algebra plans.

    Re-derives well-typedness of a {!Vida_algebra.Plan} tree against the
    catalog's type environment, independently of how the plan was built —
    the pipeline's transformations (calculus normalization, translation,
    optimizer rules, parallel plan-shape rewrites) are semantics-preserving
    {e by intention}; this module checks the typing part of that claim
    after every one of them, so a transformation bug surfaces at plan time
    with the offending stage and rule named, not as a wrong answer at
    execution time.

    The derivation mirrors the nested-relational-algebra typing rules: a
    stream operator's output is an {e environment schema} (variable/type
    bindings, in binding order); scalar expressions inside operators are
    checked with {!Vida_calculus.Typecheck} under the externals plus that
    schema. Checking is gradual exactly as query admission is: [Ty.Any]
    unifies with everything. *)

type env = (string * Vida_data.Ty.t) list

(** [environment ~env p] is the environment schema the stream plan [p]
    produces, deriving and checking every operator on the way.
    @raise Vida_error.Error on an invariant violation. *)
val environment : env:env -> Vida_algebra.Plan.t -> env

(** [infer ~env p] is the type of the plan's result: the folded value for
    a [Reduce] root, a bag of environment records for a bare stream. *)
val infer :
  ?stage:string -> ?rule:string -> env:env -> Vida_algebra.Plan.t ->
  (Vida_data.Ty.t, Vida_error.t) result

(** [verify ~env p] checks structural well-formedness ({!Vida_algebra.Plan.validate})
    and re-derives types over the whole tree. [stage] names the pipeline
    point ("translate", "optimize", "parallel"); [rule] the rewrite whose
    firing produced [p]. Both are carried into the
    {!Vida_error.Plan_invalid} diagnostic on failure. *)
val verify :
  ?stage:string -> ?rule:string -> env:env -> Vida_algebra.Plan.t ->
  (unit, Vida_error.t) result

(** [verify_exn] raises {!Vida_error.Error} instead. *)
val verify_exn :
  ?stage:string -> ?rule:string -> env:env -> Vida_algebra.Plan.t -> unit

(** [check_rewrite ~stage ~rule ~env ~before ~after] — the pre/post
    obligation for one rewrite firing: [before] must be well-typed (else
    the bug predates this rule and is reported against the stage), and
    [after] must be well-typed {e with the rule named}. Additionally the
    rewrite must not change the plan's result type (up to gradual
    unification) nor its free variables. *)
val check_rewrite :
  stage:string -> rule:string -> env:env -> before:Vida_algebra.Plan.t ->
  after:Vida_algebra.Plan.t -> (unit, Vida_error.t) result
