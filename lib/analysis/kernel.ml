(* Pure kernel-safety checks behind lint obligations P08-P10. The engine
   discharges them on every vectorized dispatch in sanitize mode; keeping
   the predicates here, next to the catalog, keeps the obligation text
   and the check that enforces it in one library. *)

let check_selection sel ~n ~lo ~hi =
  if n < 0 || n > Array.length sel then
    Some (Printf.sprintf "live count %d outside selection capacity %d" n (Array.length sel))
  else begin
    let err = ref None in
    (try
       for k = 0 to n - 1 do
         let v = sel.(k) in
         if v < lo || v >= hi then begin
           err :=
             Some
               (Printf.sprintf "sel[%d]=%d outside batch bounds [%d,%d)" k v lo hi);
           raise Exit
         end;
         if k > 0 && sel.(k - 1) >= v then begin
           err :=
             Some
               (Printf.sprintf "sel[%d]=%d not strictly above sel[%d]=%d"
                  k v (k - 1) sel.(k - 1));
           raise Exit
         end
       done
     with Exit -> ());
    !err
  end

let check_scratch_domain ~created_on ~running_on =
  if created_on = running_on then None
  else
    Some
      (Printf.sprintf
         "instance scratch created on domain %d used from domain %d"
         created_on running_on)

let check_merge_order monoid ~strategy =
  match Effects.check_merge monoid ~strategy with
  | Ok () -> None
  | Error reason -> Some reason
