(** Pure kernel-safety checks behind the lint catalog's vectorized-rung
    obligations ([P08]-[P10], see {!Lint}). Each returns [Some reason]
    on violation, [None] when the obligation holds; the engine reports
    violations through the concurrency sanitizer as
    ["kernel-obligation"] findings. *)

(** [P08] — [check_selection sel ~n ~lo ~hi]: the first [n] entries of
    the selection vector must be strictly increasing (sorted, unique)
    and each within the batch bounds [\[lo, hi)]. *)
val check_selection : int array -> n:int -> lo:int -> hi:int -> string option

(** [P09] — a kernel instance's scratch buffers are single-morsel: the
    instance must run on the domain that instantiated it. *)
val check_scratch_domain : created_on:int -> running_on:int -> string option

(** [P10] — merging vectorized partials must discharge the monoid's
    {!Effects.merge_requirement} ([`Ordered] satisfies every monoid,
    [`Unordered] only commutative ones). *)
val check_merge_order :
  Vida_calculus.Monoid.t -> strategy:[ `Ordered | `Unordered ] -> string option
