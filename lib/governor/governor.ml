(* Query-lifecycle resource governor.

   Every query runs inside a [session] carrying a wall-clock deadline, a
   cooperative cancellation token and a memory budget. The hot paths —
   raw-file scan loops, engine operator pipelines, cache admissions — poll
   or charge the ambient session; a violation surfaces as a structured
   {!Vida_error} (never a hang, never an unbounded allocation). The
   session also accumulates the degradation history of the query: IO
   retries and engine/auxiliary fallbacks. *)

(* What to do when a pinned source changes under a running query
   ([Vida_error.Source_changed]): re-pin a fresh epoch and re-run the
   query up to [n] times, or surface the error immediately. Held here (the
   policy travels with the query's limits) but enacted by the engine
   facade, which owns the pin/retry loop. *)
type change_policy = Retry_fresh of int | Fail_fast

type limits = {
  deadline_ms : float option;
  memory_budget : int option;
  max_retries : int;
  retry_backoff_ms : float;
  poll_stride : int;
  on_change : change_policy;
}

let unlimited =
  { deadline_ms = None; memory_budget = None; max_retries = 2;
    retry_backoff_ms = 1.0; poll_stride = 64; on_change = Retry_fresh 2 }

(* Bound any single backoff sleep: retries must never out-wait a deadline
   by much, even with a large retry count. *)
let max_backoff_ms = 250.0

type fallback = { stage : string; reason : string }

(* A session is shared by every domain participating in a parallel query
   region, so all mutable state is [Atomic]: counters advance with
   [fetch_and_add], the cancellation token is set with a compare-and-set
   so the first reason wins, and the fallback log is a CAS-pushed list. *)
type session = {
  id : int;
  name : string;
  limits : limits;
  started_at : float;  (* Unix.gettimeofday seconds *)
  cancel_reason : string option Atomic.t;
  cancel_at_poll : int option Atomic.t;
  polls : int Atomic.t;
  charged : int Atomic.t;
  retries : int Atomic.t;
  fallbacks : fallback list Atomic.t;  (* newest first *)
}

type report = {
  wall_ms : float;
  polls : int;
  charged_bytes : int;
  retries : int;
  fallbacks : fallback list;  (* oldest first *)
}

let now_ms () = Unix.gettimeofday () *. 1000.
let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

let next_id = Atomic.make 0

let defaults = ref unlimited
let set_default_limits l = defaults := l
let default_limits () = !defaults

let start ?limits ?(name = "query") () =
  let limits = match limits with Some l -> l | None -> !defaults in
  { id = Atomic.fetch_and_add next_id 1 + 1; name; limits;
    started_at = Unix.gettimeofday ();
    cancel_reason = Atomic.make None; cancel_at_poll = Atomic.make None;
    polls = Atomic.make 0; charged = Atomic.make 0;
    retries = Atomic.make 0; fallbacks = Atomic.make [] }

(* The ambient session is domain-local: each worker domain of a parallel
   region re-installs the owning query's session via [with_session], so
   polls and charges from every domain land on the same shared counters
   while unrelated domains stay unaffected. *)
let ambient : session option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get ambient

let with_session s f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let elapsed_ms s = now_ms () -. (s.started_at *. 1000.)
let name s = s.name

let cancel s ~reason =
  ignore (Atomic.compare_and_set s.cancel_reason None (Some reason))

(* Deterministic cooperative-cancellation injection for tests: the token
   trips itself once the session has been polled [polls] times, exactly as
   an out-of-band [cancel] landing mid-scan would. *)
let cancel_after_polls s ~polls = Atomic.set s.cancel_at_poll (Some polls)

let raise_for_cancel ~source reason = Vida_error.cancelled ~source "%s" reason

let check_deadline ~source s =
  match s.limits.deadline_ms with
  | None -> ()
  | Some deadline_ms ->
    let elapsed = elapsed_ms s in
    if elapsed > deadline_ms then
      Vida_error.deadline_exceeded ~source ~elapsed_ms:elapsed ~deadline_ms

let check_session ~source s =
  (match Atomic.get s.cancel_reason with
  | Some reason -> raise_for_cancel ~source reason
  | None -> ());
  check_deadline ~source s

(* The per-record poll. Cancellation is a flag test on every call; the
   wall clock is consulted only every [poll_stride] calls so scan loops
   stay cheap on the fast path. *)
let poll ?(source = "query") () =
  match Domain.DLS.get ambient with
  | None -> ()
  | Some s ->
    let polls = Atomic.fetch_and_add s.polls 1 + 1 in
    (match Atomic.get s.cancel_at_poll with
    | Some n when polls >= n ->
      ignore
        (Atomic.compare_and_set s.cancel_reason None
           (Some "cancellation token tripped"))
    | _ -> ());
    (match Atomic.get s.cancel_reason with
    | Some reason -> raise_for_cancel ~source reason
    | None -> ());
    if polls mod s.limits.poll_stride = 0 then check_deadline ~source s

(* Operator-pipeline boundary check: always consults the clock. *)
let checkpoint ?(source = "query") () =
  match current () with None -> () | Some s -> check_session ~source s

let budgeted () =
  match current () with
  | Some { limits = { memory_budget = Some _; _ }; _ } -> true
  | _ -> false

let charge ?(source = "query") bytes =
  match current () with
  | None -> ()
  | Some s -> (
    match s.limits.memory_budget with
    | None -> ()
    | Some budget ->
      let charged = Atomic.fetch_and_add s.charged bytes + bytes in
      if charged > budget then
        Vida_error.budget_exceeded ~source ~requested:charged ~budget)

(* (session id, budget, bytes already hard-charged) of the ambient
   budgeted session — what the cache needs to scope its admission
   accounting per query. *)
let cache_budget () =
  match current () with
  | Some ({ limits = { memory_budget = Some budget; _ }; _ } as s) ->
    Some (s.id, budget)
  | _ -> None

let rec atomic_push a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (x :: old)) then atomic_push a x

let note_fallback ?session ~stage ~reason () =
  match (match session with Some s -> Some s | None -> current ()) with
  | None -> ()
  | Some s -> atomic_push s.fallbacks { stage; reason }

let note_retry () =
  match current () with
  | None -> ()
  | Some s -> ignore (Atomic.fetch_and_add s.retries 1)

(* Bounded-exponential-backoff retry around a transient-failure-prone
   action (file loads). Only [Io_failure] is considered transient; any
   other structured error propagates immediately. The deadline and the
   cancellation token are re-checked before every attempt and every sleep,
   so retrying can never out-live the session's time budget. *)
let with_retries ~source f =
  let limits =
    match current () with Some s -> s.limits | None -> !defaults
  in
  let rec attempt k =
    (match current () with Some s -> check_session ~source s | None -> ());
    match f () with
    | v -> v
    | exception Vida_error.Error (Vida_error.Io_failure _ as e) ->
      if k >= limits.max_retries then raise (Vida_error.Error e)
      else (
        note_retry ();
        let backoff =
          Float.min max_backoff_ms
            (limits.retry_backoff_ms *. (2. ** float_of_int k))
        in
        (match current () with Some s -> check_session ~source s | None -> ());
        sleep_ms backoff;
        attempt (k + 1))
  in
  attempt 0

let report s =
  { wall_ms = elapsed_ms s; polls = Atomic.get s.polls;
    charged_bytes = Atomic.get s.charged; retries = Atomic.get s.retries;
    fallbacks = List.rev (Atomic.get s.fallbacks) }

let zero_report =
  { wall_ms = 0.; polls = 0; charged_bytes = 0; retries = 0; fallbacks = [] }

let pp_report ppf r =
  Format.fprintf ppf "wall=%.2fms polls=%d charged=%dB retries=%d fallbacks=[%s]"
    r.wall_ms r.polls r.charged_bytes r.retries
    (String.concat "; "
       (List.map (fun f -> f.stage ^ ": " ^ f.reason) r.fallbacks))

(* --- chaos hooks ---------------------------------------------------- *)

(* Deterministic engine-level fault injection: arm [n] JIT failures and
   the next [n] JIT compilations act as if code generation failed, forcing
   the governor's jit->generic degradation path. Complements the raw-byte
   faults in [Vida_raw.Fault_inject] at the engine layer. *)
module Chaos = struct
  let jit_failures = Atomic.make 0

  let fail_jit_compiles n = Atomic.set jit_failures n
  let reset () = Atomic.set jit_failures 0

  let take_jit_failure () =
    let rec take () =
      let n = Atomic.get jit_failures in
      if n > 0 then
        if Atomic.compare_and_set jit_failures n (n - 1) then
          Some "injected JIT compile failure"
        else take ()
      else None
    in
    take ()
end
