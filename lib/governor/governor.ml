(* Query-lifecycle resource governor.

   Every query runs inside a [session] carrying a wall-clock deadline, a
   cooperative cancellation token and a memory budget. The hot paths —
   raw-file scan loops, engine operator pipelines, cache admissions — poll
   or charge the ambient session; a violation surfaces as a structured
   {!Vida_error} (never a hang, never an unbounded allocation). The
   session also accumulates the degradation history of the query: IO
   retries and engine/auxiliary fallbacks. *)

(* What to do when a pinned source changes under a running query
   ([Vida_error.Source_changed]): re-pin a fresh epoch and re-run the
   query up to [n] times, or surface the error immediately. Held here (the
   policy travels with the query's limits) but enacted by the engine
   facade, which owns the pin/retry loop. *)
type change_policy = Retry_fresh of int | Fail_fast

type limits = {
  deadline_ms : float option;
  memory_budget : int option;
  max_retries : int;
  retry_backoff_ms : float;
  poll_stride : int;
  on_change : change_policy;
}

let unlimited =
  { deadline_ms = None; memory_budget = None; max_retries = 2;
    retry_backoff_ms = 1.0; poll_stride = 64; on_change = Retry_fresh 2 }

(* Bound any single backoff sleep: retries must never out-wait a deadline
   by much, even with a large retry count. *)
let max_backoff_ms = 250.0

type fallback = { stage : string; reason : string }

(* A session is shared by every domain participating in a parallel query
   region, so all mutable state is [Atomic]: counters advance with
   [fetch_and_add], the cancellation token is set with a compare-and-set
   so the first reason wins, and the fallback log is a CAS-pushed list. *)
type session = {
  id : int;
  name : string;
  limits : limits;
  started_at : float;  (* Unix.gettimeofday seconds *)
  cancel_reason : string option Atomic.t;
  cancel_at_poll : int option Atomic.t;
  polls : int Atomic.t;
  charged : int Atomic.t;
  retries : int Atomic.t;
  fallbacks : fallback list Atomic.t;  (* newest first *)
  batches : int Atomic.t;  (* vectorized batches executed *)
  batch_sizes : int Atomic.t array;  (* ring of recent batch row counts, for p50 *)
  batch_cursor : int Atomic.t;
}

(* Recent-batch-size ring capacity. Ring entries are atomics: slots are
   claimed with a fetch-and-add on the cursor and written from multiple
   domains, so a plain array could serve [batch_rows_p50] torn or stale
   values under the memory model. *)
let batch_ring = 128

type report = {
  wall_ms : float;
  polls : int;
  charged_bytes : int;
  retries : int;
  fallbacks : fallback list;  (* oldest first *)
  batches : int;  (* vectorized batches executed *)
  batch_rows_p50 : int;  (* median rows per batch over recent batches *)
}

let now_ms () = Unix.gettimeofday () *. 1000.
let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

let next_id = Atomic.make 0

let defaults = ref unlimited
let set_default_limits l = defaults := l
let default_limits () = !defaults

let start ?limits ?(name = "query") () =
  let limits = match limits with Some l -> l | None -> !defaults in
  { id = Atomic.fetch_and_add next_id 1 + 1; name; limits;
    started_at = Unix.gettimeofday ();
    cancel_reason = Atomic.make None; cancel_at_poll = Atomic.make None;
    polls = Atomic.make 0; charged = Atomic.make 0;
    retries = Atomic.make 0; fallbacks = Atomic.make [];
    batches = Atomic.make 0;
    batch_sizes = Array.init batch_ring (fun _ -> Atomic.make 0);
    batch_cursor = Atomic.make 0 }

(* The ambient session is domain-local: each worker domain of a parallel
   region re-installs the owning query's session via [with_session], so
   polls and charges from every domain land on the same shared counters
   while unrelated domains stay unaffected. *)
let ambient : session option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get ambient

let with_session s f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let elapsed_ms s = now_ms () -. (s.started_at *. 1000.)
let name s = s.name

(* Stable per-process identity of the session: the shared morsel pool's
   fair-share accounting and the cache's per-query admission scoping both
   key on it. *)
let session_id s = s.id

let cancel s ~reason =
  ignore (Atomic.compare_and_set s.cancel_reason None (Some reason))

(* Deterministic cooperative-cancellation injection for tests: the token
   trips itself once the session has been polled [polls] times, exactly as
   an out-of-band [cancel] landing mid-scan would. *)
let cancel_after_polls s ~polls = Atomic.set s.cancel_at_poll (Some polls)

let raise_for_cancel ~source reason = Vida_error.cancelled ~source "%s" reason

let check_deadline ~source s =
  match s.limits.deadline_ms with
  | None -> ()
  | Some deadline_ms ->
    let elapsed = elapsed_ms s in
    if elapsed > deadline_ms then
      Vida_error.deadline_exceeded ~source ~elapsed_ms:elapsed ~deadline_ms

let check_session ~source s =
  (match Atomic.get s.cancel_reason with
  | Some reason -> raise_for_cancel ~source reason
  | None -> ());
  check_deadline ~source s

(* The per-record poll. Cancellation is a flag test on every call; the
   wall clock is consulted only every [poll_stride] calls so scan loops
   stay cheap on the fast path. *)
let poll ?(source = "query") () =
  match Domain.DLS.get ambient with
  | None -> ()
  | Some s ->
    let polls = Atomic.fetch_and_add s.polls 1 + 1 in
    (match Atomic.get s.cancel_at_poll with
    | Some n when polls >= n ->
      ignore
        (Atomic.compare_and_set s.cancel_reason None
           (Some "cancellation token tripped"))
    | _ -> ());
    (match Atomic.get s.cancel_reason with
    | Some reason -> raise_for_cancel ~source reason
    | None -> ());
    if polls mod s.limits.poll_stride = 0 then check_deadline ~source s

(* The per-batch poll of the vectorized path: one call covers [rows]
   records. The poll counter advances by the whole batch so budgets,
   deadline strides and [cancel_after_polls] triggers keep record-level
   semantics — a token armed for poll N trips at the first batch boundary
   at or past N, which is exactly where a per-record loop would next have
   observed it had it been checked at batch granularity. The clock is
   always consulted: a batch is far coarser than [poll_stride]. *)
let poll_batch ?(source = "query") ~rows () =
  match Domain.DLS.get ambient with
  | None -> ()
  | Some s ->
    let rows = max rows 0 in
    let polls = Atomic.fetch_and_add s.polls rows + rows in
    ignore (Atomic.fetch_and_add s.batches 1);
    let slot = Atomic.fetch_and_add s.batch_cursor 1 in
    Atomic.set s.batch_sizes.(slot mod batch_ring) rows;
    (match Atomic.get s.cancel_at_poll with
    | Some n when polls >= n ->
      ignore
        (Atomic.compare_and_set s.cancel_reason None
           (Some "cancellation token tripped"))
    | _ -> ());
    (match Atomic.get s.cancel_reason with
    | Some reason -> raise_for_cancel ~source reason
    | None -> ());
    check_deadline ~source s

(* Operator-pipeline boundary check: always consults the clock. *)
let checkpoint ?(source = "query") () =
  match current () with None -> () | Some s -> check_session ~source s

let budgeted () =
  match current () with
  | Some { limits = { memory_budget = Some _; _ }; _ } -> true
  | _ -> false

let charge ?(source = "query") bytes =
  match current () with
  | None -> ()
  | Some s -> (
    match s.limits.memory_budget with
    | None -> ()
    | Some budget ->
      let charged = Atomic.fetch_and_add s.charged bytes + bytes in
      if charged > budget then
        Vida_error.budget_exceeded ~source ~requested:charged ~budget)

(* (session id, budget, bytes already hard-charged) of the ambient
   budgeted session — what the cache needs to scope its admission
   accounting per query. *)
let cache_budget () =
  match current () with
  | Some ({ limits = { memory_budget = Some budget; _ }; _ } as s) ->
    Some (s.id, budget)
  | _ -> None

let rec atomic_push a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (x :: old)) then atomic_push a x

let note_fallback ?session ~stage ~reason () =
  match (match session with Some s -> Some s | None -> current ()) with
  | None -> ()
  | Some s -> atomic_push s.fallbacks { stage; reason }

let note_retry () =
  match current () with
  | None -> ()
  | Some s -> ignore (Atomic.fetch_and_add s.retries 1)

(* Bounded-exponential-backoff retry around a transient-failure-prone
   action (file loads). Only [Io_failure] is considered transient; any
   other structured error propagates immediately. The deadline and the
   cancellation token are re-checked before every attempt and every sleep,
   so retrying can never out-live the session's time budget. *)
let with_retries ~source f =
  let limits =
    match current () with Some s -> s.limits | None -> !defaults
  in
  let rec attempt k =
    (match current () with Some s -> check_session ~source s | None -> ());
    match f () with
    | v -> v
    | exception Vida_error.Error (Vida_error.Io_failure _ as e) ->
      if k >= limits.max_retries then raise (Vida_error.Error e)
      else (
        note_retry ();
        let backoff =
          Float.min max_backoff_ms
            (limits.retry_backoff_ms *. (2. ** float_of_int k))
        in
        (match current () with Some s -> check_session ~source s | None -> ());
        sleep_ms backoff;
        attempt (k + 1))
  in
  attempt 0

let batch_rows_p50 s =
  let filled = min (Atomic.get s.batch_cursor) batch_ring in
  if filled = 0 then 0
  else begin
    let xs = Array.init filled (fun i -> Atomic.get s.batch_sizes.(i)) in
    Array.sort compare xs;
    xs.(filled / 2)
  end

let report s =
  { wall_ms = elapsed_ms s; polls = Atomic.get s.polls;
    charged_bytes = Atomic.get s.charged; retries = Atomic.get s.retries;
    fallbacks = List.rev (Atomic.get s.fallbacks);
    batches = Atomic.get s.batches; batch_rows_p50 = batch_rows_p50 s }

let zero_report =
  { wall_ms = 0.; polls = 0; charged_bytes = 0; retries = 0; fallbacks = [];
    batches = 0; batch_rows_p50 = 0 }

let pp_report ppf r =
  Format.fprintf ppf
    "wall=%.2fms polls=%d charged=%dB retries=%d batches=%d \
     batch_rows_p50=%d fallbacks=[%s]"
    r.wall_ms r.polls r.charged_bytes r.retries r.batches r.batch_rows_p50
    (String.concat "; "
       (List.map (fun f -> f.stage ^ ": " ^ f.reason) r.fallbacks))

(* --- admission control / overload resilience ------------------------ *)

(* The serving layer's front door. Budgets and deadlines (above) bound
   ONE query; admission bounds the POPULATION of queries: how many run at
   once (globally and per tenant), how many may wait, how much aggregate
   memory the admitted set may reserve, and how long a waiter may sit in
   the queue before it is shed with a typed [Overloaded] error carrying a
   retry-after hint. Everything is a counter under one mutex — admission
   is cold compared to query execution.

   Waiting is a bounded sleep-poll (stdlib [Condition] has no timed
   wait): releases are observed within [poll_ms], which is noise next to
   queue timeouts measured in hundreds of milliseconds. *)
module Admission = struct
  type config = {
    max_concurrent : int;  (* queries running at once *)
    max_queue : int;  (* waiters beyond the running set *)
    per_tenant : int;  (* concurrent running queries per tenant *)
    memory_watermark : int option;
        (* aggregate bytes the admitted set may reserve (a query reserves
           its memory budget; un-budgeted queries reserve nothing) *)
    queue_timeout_ms : float;  (* max queue wait before shedding *)
    retry_after_ms : float;  (* backoff hint in shed responses *)
  }

  let default_config =
    { max_concurrent = 4; max_queue = 16; per_tenant = 2;
      memory_watermark = None; queue_timeout_ms = 1000.;
      retry_after_ms = 250. }

  type gauges = {
    running : int;
    queued : int;
    reserved_bytes : int;
    tenants : (string * int) list;  (* running per tenant, sorted *)
    admitted_total : int;
    shed_total : int;
  }

  type t = {
    config : config;
    mutex : Vida_sync.Lock.t;
    mutable running : int;
    mutable queued : int;
    mutable reserved : int;
    tenant_running : (string, int) Hashtbl.t;
    mutable admitted_total : int;
    mutable shed_total : int;
  }

  type ticket = { t_tenant : string; t_reserve : int }

  let create ?(config = default_config) () =
    { config;
      mutex = Vida_sync.Lock.create ~rank:75 ~name:"governor.admission" ();
      running = 0; queued = 0; reserved = 0;
      tenant_running = Hashtbl.create 8; admitted_total = 0; shed_total = 0 }

  let poll_ms = 5.

  let locked t f = Vida_sync.Lock.protect t.mutex f

  let tenant_count t tenant =
    Option.value ~default:0 (Hashtbl.find_opt t.tenant_running tenant)

  let shed t ~source ~reason =
    locked t (fun () -> t.shed_total <- t.shed_total + 1);
    Vida_error.overloaded ~source ~retry_after_ms:t.config.retry_after_ms "%s"
      reason

  (* Does a (tenant, reserve) admission fit right now? Caller holds the
     mutex. *)
  let fits t ~tenant ~reserve =
    t.running < t.config.max_concurrent
    && tenant_count t tenant < t.config.per_tenant
    && (match t.config.memory_watermark with
       | Some w -> t.reserved + reserve <= w
       | None -> true)

  let take t ~tenant ~reserve =
    t.running <- t.running + 1;
    t.reserved <- t.reserved + reserve;
    t.admitted_total <- t.admitted_total + 1;
    Hashtbl.replace t.tenant_running tenant (tenant_count t tenant + 1)

  (* [admit t ~tenant ~reserve ?deadline_ms ()] blocks until the query
     may run, and returns the ticket to [release] when it finishes (on
     ANY path — the caller pairs them with [Fun.protect]). Sheds with
     [Overloaded] when the queue is full, when the wait would exceed the
     queue timeout (or the query's own remaining [deadline_ms], whichever
     is sooner), or when a tenant is already at its concurrency cap with
     no prospect of this waiter fitting the queue bound. *)
  let admit ?deadline_ms t ~tenant ~reserve =
    let source = "admission:" ^ tenant in
    (match t.config.memory_watermark with
    | Some w when reserve > w ->
      shed t ~source
        ~reason:
          (Printf.sprintf
             "memory reservation of %d bytes exceeds the %d-byte watermark"
             reserve w)
    | _ -> ());
    let wait_budget_ms =
      match deadline_ms with
      | Some d -> Float.min t.config.queue_timeout_ms d
      | None -> t.config.queue_timeout_ms
    in
    let admitted_now =
      locked t (fun () ->
          if fits t ~tenant ~reserve then (
            take t ~tenant ~reserve;
            `Admitted)
          else if t.queued >= t.config.max_queue then `Queue_full
          else (
            t.queued <- t.queued + 1;
            `Queued))
    in
    match admitted_now with
    | `Admitted -> { t_tenant = tenant; t_reserve = reserve }
    | `Queue_full ->
      shed t ~source
        ~reason:
          (Printf.sprintf "admission queue full (%d waiting, %d running)"
             t.config.max_queue t.config.max_concurrent)
    | `Queued ->
      let t0 = now_ms () in
      let rec wait () =
        let outcome =
          locked t (fun () ->
              if fits t ~tenant ~reserve then (
                t.queued <- t.queued - 1;
                take t ~tenant ~reserve;
                `Admitted)
              else if now_ms () -. t0 > wait_budget_ms then (
                t.queued <- t.queued - 1;
                `Timed_out)
              else `Keep_waiting)
        in
        match outcome with
        | `Admitted -> { t_tenant = tenant; t_reserve = reserve }
        | `Timed_out ->
          shed t ~source
            ~reason:
              (Printf.sprintf "queued %.0f ms without a slot" (now_ms () -. t0))
        | `Keep_waiting ->
          sleep_ms poll_ms;
          wait ()
      in
      wait ()

  let release t ticket =
    locked t (fun () ->
        t.running <- t.running - 1;
        t.reserved <- t.reserved - ticket.t_reserve;
        match tenant_count t ticket.t_tenant - 1 with
        | 0 -> Hashtbl.remove t.tenant_running ticket.t_tenant
        | n -> Hashtbl.replace t.tenant_running ticket.t_tenant n)

  (* Degradation-ladder input: [`Normal] -> run with the shared pool;
     [`Elevated] (queries waiting, or the running set at capacity) -> run
     sequentially so in-flight queries finish sooner; shedding itself is
     the third rung, decided inside [admit]. *)
  let pressure t =
    locked t (fun () ->
        if t.queued > 0 || t.running >= t.config.max_concurrent then `Elevated
        else `Normal)

  let gauges t =
    locked t (fun () ->
        { running = t.running; queued = t.queued; reserved_bytes = t.reserved;
          tenants =
            List.sort compare
              (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tenant_running []);
          admitted_total = t.admitted_total; shed_total = t.shed_total })

  let config t = t.config
end

(* --- per-source circuit breakers ------------------------------------ *)

(* Where [with_retries] bounds ONE query's exposure to a transient fault,
   a breaker bounds the POPULATION's exposure to a source that keeps
   failing: after [failure_threshold] consecutive IO/parse failures the
   breaker opens and every query touching the source is shed immediately
   with a typed [Source_unavailable] (exit 78) carrying the remaining
   cooldown as its retry hint — shedding costs a hashtable probe, not a
   full failing scan plus retry backoffs. After [cooldown_ms] the breaker
   half-opens: exactly one caller is let through as the probe; its success
   closes the breaker, its failure re-opens it for another cooldown.

   State is process-global under one mutex, keyed by the source's backing
   path (what the raw-buffer load path sees) — the same shape as
   [Limits]/[Io_fault]: breakers protect sources, not sessions. *)
module Breaker = struct
  type config = {
    failure_threshold : int;  (* consecutive failures that trip the breaker *)
    cooldown_ms : float;  (* open -> half-open probe delay *)
  }

  let default_config = { failure_threshold = 5; cooldown_ms = 2000. }

  type state =
    | Closed of int  (* consecutive failures so far *)
    | Open of float  (* tripped at (ms timestamp) *)
    | Half_open of { claimed_at : float; claimant : int option }
        (* probe in flight: when it was claimed and by which governor
           session — the claimant's own later checks (the facade
           pre-check, then the raw-buffer load) must all pass *)

  type entry = {
    mutable state : state;
    mutable trips : int;  (* times the breaker opened *)
    mutable shed_fast : int;  (* queries shed while open *)
    mutable last_reason : string;
  }

  type snapshot = {
    b_source : string;
    b_state : string;  (* "closed" | "open" | "half-open" *)
    b_failures : int;  (* consecutive failures while closed *)
    b_trips : int;
    b_shed : int;
    b_reason : string;  (* reason of the last recorded failure *)
  }

  let cfg = ref default_config
  let set_config c = cfg := c
  let config () = !cfg

  let mutex = Vida_sync.Lock.create ~rank:80 ~name:"governor.breaker" ()
  let table : (string, entry) Hashtbl.t = Hashtbl.create 8

  let locked f = Vida_sync.Lock.protect mutex f

  let entry source =
    match Hashtbl.find_opt table source with
    | Some e -> e
    | None ->
      let e =
        { state = Closed 0; trips = 0; shed_fast = 0; last_reason = "" }
      in
      Hashtbl.add table source e;
      e

  (* [check ~source] is the gate on the load path. Closed: free pass.
     Open within cooldown: shed (raises). Open past cooldown: this caller
     becomes the half-open probe and passes. Half-open with a live probe:
     shed — one probe at a time, so a flapping source is only ever paying
     one speculative scan. A probe claim older than a full cooldown is
     assumed lost (its query died before reporting) and is re-claimed. *)
  let check ~source =
    let me = Option.map (fun s -> s.id) (Domain.DLS.get ambient) in
    let verdict =
      locked (fun () ->
          match Hashtbl.find_opt table source with
          | None | Some { state = Closed _; _ } -> `Pass
          | Some e -> (
            let now = now_ms () in
            let claim () =
              e.state <- Half_open { claimed_at = now; claimant = me }
            in
            match e.state with
            | Closed _ -> `Pass
            | Open since ->
              let remaining = !cfg.cooldown_ms -. (now -. since) in
              if remaining > 0. then (
                e.shed_fast <- e.shed_fast + 1;
                `Shed (remaining, e.last_reason))
              else (
                claim ();
                `Pass)
            | Half_open { claimed_at; claimant } ->
              if claimant <> None && claimant = me then `Pass
              else if now -. claimed_at > !cfg.cooldown_ms then (
                claim ();
                `Pass)
              else (
                e.shed_fast <- e.shed_fast + 1;
                `Shed (!cfg.cooldown_ms -. (now -. claimed_at), e.last_reason))))
    in
    match verdict with
    | `Pass -> ()
    | `Shed (retry_after_ms, reason) ->
      note_fallback ~stage:"breaker-open" ~reason:source ();
      Vida_error.source_unavailable ~source
        ~retry_after_ms:(Float.max 1. retry_after_ms)
        "circuit breaker open after repeated failures%s"
        (if reason = "" then "" else ": " ^ reason)

  let success ~source =
    locked (fun () ->
        match Hashtbl.find_opt table source with
        | None | Some { state = Closed 0; _ } -> ()
        | Some e -> e.state <- Closed 0)

  let failure ~source ~reason =
    locked (fun () ->
        let e = entry source in
        e.last_reason <- reason;
        match e.state with
        | Closed n ->
          if n + 1 >= !cfg.failure_threshold then (
            e.state <- Open (now_ms ());
            e.trips <- e.trips + 1)
          else e.state <- Closed (n + 1)
        | Half_open _ ->
          (* the probe failed: straight back to open for another cooldown *)
          e.state <- Open (now_ms ());
          e.trips <- e.trips + 1
        | Open _ -> ())

  (* force-trip, for chaos tests and operational shedding *)
  let trip ~source ~reason =
    locked (fun () ->
        let e = entry source in
        e.last_reason <- reason;
        e.state <- Open (now_ms ());
        e.trips <- e.trips + 1)

  let state ~source =
    locked (fun () ->
        match Hashtbl.find_opt table source with
        | None | Some { state = Closed _; _ } -> `Closed
        | Some { state = Open _; _ } -> `Open
        | Some { state = Half_open _; _ } -> `Half_open)

  let snapshot () =
    locked (fun () ->
        Hashtbl.fold
          (fun b_source e acc ->
            let b_state, b_failures =
              match e.state with
              | Closed n -> ("closed", n)
              | Open _ -> ("open", !cfg.failure_threshold)
              | Half_open _ -> ("half-open", !cfg.failure_threshold)
            in
            { b_source; b_state; b_failures; b_trips = e.trips;
              b_shed = e.shed_fast; b_reason = e.last_reason }
            :: acc)
          table []
        |> List.sort (fun a b -> compare a.b_source b.b_source))

  let reset () = locked (fun () -> Hashtbl.reset table)

  (* --- durable export/import ---

     An open breaker is operational knowledge paid for with failed scans;
     a restart used to forget it and re-probe a known-bad source at full
     threshold. Export captures each entry with its REMAINING cooldown
     (wall-clock timestamps don't survive a restart; a remaining duration
     does), import reconstructs the open state by back-dating the trip so
     exactly that much cooldown is left. Half-open exports as open with
     zero remaining — the probe died with the process, so the next check
     after import becomes the new probe. *)

  type persisted = {
    p_source : string;
    p_failures : int;  (* consecutive failures while closed *)
    p_open_remaining_ms : float option;  (* [Some r] = open, r cooldown left *)
    p_trips : int;
    p_shed : int;
    p_reason : string;
  }

  let export () =
    locked (fun () ->
        let now = now_ms () in
        Hashtbl.fold
          (fun p_source e acc ->
            let p_failures, p_open_remaining_ms =
              match e.state with
              | Closed n -> (n, None)
              | Open since ->
                (0, Some (Float.max 0. (!cfg.cooldown_ms -. (now -. since))))
              | Half_open _ -> (0, Some 0.)
            in
            { p_source; p_failures; p_open_remaining_ms; p_trips = e.trips;
              p_shed = e.shed_fast; p_reason = e.last_reason }
            :: acc)
          table []
        |> List.sort (fun a b -> compare a.p_source b.p_source))

  let import persisted =
    locked (fun () ->
        let now = now_ms () in
        List.iter
          (fun p ->
            let e = entry p.p_source in
            e.trips <- p.p_trips;
            e.shed_fast <- p.p_shed;
            e.last_reason <- p.p_reason;
            e.state <-
              (match p.p_open_remaining_ms with
              | None -> Closed p.p_failures
              | Some remaining ->
                let remaining =
                  Float.max 0. (Float.min remaining !cfg.cooldown_ms)
                in
                Open (now -. (!cfg.cooldown_ms -. remaining))))
          persisted)
end

(* --- chaos hooks ---------------------------------------------------- *)

(* Deterministic engine-level fault injection: arm [n] JIT failures and
   the next [n] JIT compilations act as if code generation failed, forcing
   the governor's jit->generic degradation path. Complements the raw-byte
   faults in [Vida_raw.Fault_inject] at the engine layer. *)
module Chaos = struct
  let jit_failures = Atomic.make 0

  let fail_jit_compiles n = Atomic.set jit_failures n
  let reset () = Atomic.set jit_failures 0

  let take_jit_failure () =
    let rec take () =
      let n = Atomic.get jit_failures in
      if n > 0 then
        if Atomic.compare_and_set jit_failures n (n - 1) then
          Some "injected JIT compile failure"
        else take ()
      else None
    in
    take ()
end
