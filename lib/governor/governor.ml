(* Query-lifecycle resource governor.

   Every query runs inside a [session] carrying a wall-clock deadline, a
   cooperative cancellation token and a memory budget. The hot paths —
   raw-file scan loops, engine operator pipelines, cache admissions — poll
   or charge the ambient session; a violation surfaces as a structured
   {!Vida_error} (never a hang, never an unbounded allocation). The
   session also accumulates the degradation history of the query: IO
   retries and engine/auxiliary fallbacks. *)

type limits = {
  deadline_ms : float option;
  memory_budget : int option;
  max_retries : int;
  retry_backoff_ms : float;
  poll_stride : int;
}

let unlimited =
  { deadline_ms = None; memory_budget = None; max_retries = 2;
    retry_backoff_ms = 1.0; poll_stride = 64 }

(* Bound any single backoff sleep: retries must never out-wait a deadline
   by much, even with a large retry count. *)
let max_backoff_ms = 250.0

type fallback = { stage : string; reason : string }

type session = {
  id : int;
  name : string;
  limits : limits;
  started_at : float;  (* Unix.gettimeofday seconds *)
  mutable cancel_reason : string option;
  mutable cancel_at_poll : int option;
  mutable polls : int;
  mutable charged : int;
  mutable retries : int;
  mutable fallbacks : fallback list;  (* newest first *)
}

type report = {
  wall_ms : float;
  polls : int;
  charged_bytes : int;
  retries : int;
  fallbacks : fallback list;  (* oldest first *)
}

let now_ms () = Unix.gettimeofday () *. 1000.
let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

let next_id = ref 0

let defaults = ref unlimited
let set_default_limits l = defaults := l
let default_limits () = !defaults

let start ?limits ?(name = "query") () =
  let limits = match limits with Some l -> l | None -> !defaults in
  incr next_id;
  { id = !next_id; name; limits; started_at = Unix.gettimeofday ();
    cancel_reason = None; cancel_at_poll = None; polls = 0; charged = 0;
    retries = 0; fallbacks = [] }

let ambient : session option ref = ref None
let current () = !ambient

let with_session s f =
  let saved = !ambient in
  ambient := Some s;
  Fun.protect ~finally:(fun () -> ambient := saved) f

let elapsed_ms s = now_ms () -. (s.started_at *. 1000.)

let cancel s ~reason = if s.cancel_reason = None then s.cancel_reason <- Some reason

(* Deterministic cooperative-cancellation injection for tests: the token
   trips itself once the session has been polled [polls] times, exactly as
   an out-of-band [cancel] landing mid-scan would. *)
let cancel_after_polls s ~polls = s.cancel_at_poll <- Some polls

let raise_for_cancel ~source reason = Vida_error.cancelled ~source "%s" reason

let check_deadline ~source s =
  match s.limits.deadline_ms with
  | None -> ()
  | Some deadline_ms ->
    let elapsed = elapsed_ms s in
    if elapsed > deadline_ms then
      Vida_error.deadline_exceeded ~source ~elapsed_ms:elapsed ~deadline_ms

let check_session ~source s =
  (match s.cancel_reason with
  | Some reason -> raise_for_cancel ~source reason
  | None -> ());
  check_deadline ~source s

(* The per-record poll. Cancellation is a flag test on every call; the
   wall clock is consulted only every [poll_stride] calls so scan loops
   stay cheap on the fast path. *)
let poll ?(source = "query") () =
  match !ambient with
  | None -> ()
  | Some s ->
    s.polls <- s.polls + 1;
    (match s.cancel_at_poll with
    | Some n when s.polls >= n && s.cancel_reason = None ->
      s.cancel_reason <- Some "cancellation token tripped"
    | _ -> ());
    (match s.cancel_reason with
    | Some reason -> raise_for_cancel ~source reason
    | None -> ());
    if s.polls mod s.limits.poll_stride = 0 then check_deadline ~source s

(* Operator-pipeline boundary check: always consults the clock. *)
let checkpoint ?(source = "query") () =
  match !ambient with None -> () | Some s -> check_session ~source s

let budgeted () =
  match !ambient with
  | Some { limits = { memory_budget = Some _; _ }; _ } -> true
  | _ -> false

let charge ?(source = "query") bytes =
  match !ambient with
  | None -> ()
  | Some s -> (
    match s.limits.memory_budget with
    | None -> ()
    | Some budget ->
      s.charged <- s.charged + bytes;
      if s.charged > budget then
        Vida_error.budget_exceeded ~source ~requested:s.charged ~budget)

(* (session id, budget, bytes already hard-charged) of the ambient
   budgeted session — what the cache needs to scope its admission
   accounting per query. *)
let cache_budget () =
  match !ambient with
  | Some ({ limits = { memory_budget = Some budget; _ }; _ } as s) ->
    Some (s.id, budget)
  | _ -> None

let note_fallback ?session ~stage ~reason () =
  match (match session with Some s -> Some s | None -> !ambient) with
  | None -> ()
  | Some s -> s.fallbacks <- { stage; reason } :: s.fallbacks

let note_retry () =
  match !ambient with None -> () | Some s -> s.retries <- s.retries + 1

(* Bounded-exponential-backoff retry around a transient-failure-prone
   action (file loads). Only [Io_failure] is considered transient; any
   other structured error propagates immediately. The deadline and the
   cancellation token are re-checked before every attempt and every sleep,
   so retrying can never out-live the session's time budget. *)
let with_retries ~source f =
  let limits =
    match !ambient with Some s -> s.limits | None -> !defaults
  in
  let rec attempt k =
    (match !ambient with Some s -> check_session ~source s | None -> ());
    match f () with
    | v -> v
    | exception Vida_error.Error (Vida_error.Io_failure _ as e) ->
      if k >= limits.max_retries then raise (Vida_error.Error e)
      else (
        note_retry ();
        let backoff =
          Float.min max_backoff_ms
            (limits.retry_backoff_ms *. (2. ** float_of_int k))
        in
        (match !ambient with Some s -> check_session ~source s | None -> ());
        sleep_ms backoff;
        attempt (k + 1))
  in
  attempt 0

let report s =
  { wall_ms = elapsed_ms s; polls = s.polls; charged_bytes = s.charged;
    retries = s.retries; fallbacks = List.rev s.fallbacks }

let zero_report =
  { wall_ms = 0.; polls = 0; charged_bytes = 0; retries = 0; fallbacks = [] }

let pp_report ppf r =
  Format.fprintf ppf "wall=%.2fms polls=%d charged=%dB retries=%d fallbacks=[%s]"
    r.wall_ms r.polls r.charged_bytes r.retries
    (String.concat "; "
       (List.map (fun f -> f.stage ^ ": " ^ f.reason) r.fallbacks))

(* --- chaos hooks ---------------------------------------------------- *)

(* Deterministic engine-level fault injection: arm [n] JIT failures and
   the next [n] JIT compilations act as if code generation failed, forcing
   the governor's jit->generic degradation path. Complements the raw-byte
   faults in [Vida_raw.Fault_inject] at the engine layer. *)
module Chaos = struct
  let jit_failures = ref 0

  let fail_jit_compiles n = jit_failures := n
  let reset () = jit_failures := 0

  let take_jit_failure () =
    if !jit_failures > 0 then (
      decr jit_failures;
      Some "injected JIT compile failure")
    else None
end
