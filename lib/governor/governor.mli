(** Query-lifecycle resource governor (robustness layer).

    ViDa is an always-on engine querying files it does not control, so one
    pathological query — a huge un-indexed scan, a nesting-heavy source, a
    cache-polluting materialization — must not take the service down. Every
    query runs inside a {!session} carrying:

    - a wall-clock {e deadline}, polled cooperatively at record granularity
      in the scan loops and at operator boundaries in both engines;
    - a {e cancellation token}, checked on every poll;
    - a {e memory budget}, hard-charged by operator materializations
      (join/product build sides) and consulted by the shared cache to scope
      one query's admissions (see {!Vida_storage.Cache});
    - the query's {e degradation history}: transient-IO retries and
      fallbacks (JIT→Generic, sidecar→raw scan).

    Violations raise the structured {!Vida_error} cases
    [Deadline_exceeded] / [Budget_exceeded] / [Cancelled] — never a hang,
    never an unbounded allocation, never an untyped exception. *)

(** Policy for a pinned source changing under a running query
    ([Vida_error.Source_changed]): [Retry_fresh n] re-pins a fresh epoch
    and re-runs the whole query up to [n] times (each retry recorded as an
    ["epoch-repin"] fallback); [Fail_fast] surfaces the error to the
    caller. Enacted by the engine facade, which owns the pin/retry loop. *)
type change_policy = Retry_fresh of int | Fail_fast

type limits = {
  deadline_ms : float option;  (** wall-clock budget for the whole query *)
  memory_budget : int option;  (** bytes of materialized/cached working set *)
  max_retries : int;  (** bounded retries for transient IO failures *)
  retry_backoff_ms : float;  (** initial backoff, doubled per retry *)
  poll_stride : int;  (** clock consulted every N polls (cancel: every poll) *)
  on_change : change_policy;  (** reaction to a source changing mid-query *)
}

val unlimited : limits
(** no deadline, no budget, 2 retries with 1 ms initial backoff,
    [Retry_fresh 2] on mid-query source changes. *)

type fallback = { stage : string; reason : string }
(** one rung of the degradation ladder, e.g.
    [{ stage = "jit->generic"; reason = ... }]. *)

type session

type report = {
  wall_ms : float;
  polls : int;
  charged_bytes : int;
  retries : int;
  fallbacks : fallback list;  (** oldest first *)
  batches : int;  (** vectorized batches executed *)
  batch_rows_p50 : int;  (** median rows per batch over recent batches *)
}

(** {1 Session lifecycle} *)

val start : ?limits:limits -> ?name:string -> unit -> session
(** a fresh session; [limits] defaults to {!default_limits}. *)

val with_session : session -> (unit -> 'a) -> 'a
(** install [s] as the ambient session for the duration of [f]
    (exception-safe, restores the previous one — sessions nest). *)

val current : unit -> session option

val set_default_limits : limits -> unit
(** limits used by [start] when none are given — the CLI's [.timeout] /
    [.limit] dot-commands set these. *)

val default_limits : unit -> limits

(** {1 Cooperative control} *)

val cancel : session -> reason:string -> unit
(** trip the cancellation token; the query observes it at its next poll. *)

val cancel_after_polls : session -> polls:int -> unit
(** deterministic test injection: the token trips itself at the [polls]-th
    poll, exactly as an out-of-band {!cancel} landing mid-scan would. *)

val poll : ?source:string -> unit -> unit
(** the per-record check in scan loops: cancellation on every call, the
    wall clock every [poll_stride] calls. No-op without an ambient
    session. Raises [Cancelled] / [Deadline_exceeded]. *)

val poll_batch : ?source:string -> rows:int -> unit -> unit
(** the batch-boundary check of the vectorized path: one call covers
    [rows] records. Advances the poll counter by the whole batch (so
    deadline/cancellation semantics stay record-equivalent — a token
    armed for poll N trips at the first batch boundary at or past N),
    records the batch for the report's batch counters, and always
    consults the clock. *)

val checkpoint : ?source:string -> unit -> unit
(** operator-pipeline-boundary check: like {!poll} but always consults
    the clock. *)

(** {1 Memory budget} *)

val budgeted : unit -> bool
(** whether the ambient session carries a budget — guard for callers that
    would otherwise pay to compute byte sizes nobody accounts. *)

val charge : ?source:string -> int -> unit
(** hard-charge [bytes] of materialized working set against the ambient
    budget; raises [Budget_exceeded] once cumulative charges pass it. *)

val cache_budget : unit -> (int * int) option
(** [(session id, budget bytes)] of the ambient budgeted session, for the
    cache's per-query admission accounting. *)

(** {1 Degradation bookkeeping} *)

val note_fallback : ?session:session -> stage:string -> reason:string -> unit -> unit
val note_retry : unit -> unit

val with_retries : source:string -> (unit -> 'a) -> 'a
(** run [f], retrying transient [Io_failure]s up to [max_retries] times
    with bounded exponential backoff (each sleep capped at 250 ms). The
    deadline and cancellation token are re-checked before every attempt
    and sleep. Other structured errors propagate immediately. *)

(** {1 Clock utilities}

    Shared here so lower layers need no direct [unix] dependency. *)

val now_ms : unit -> float
val sleep_ms : float -> unit

(** {1 Reporting} *)

val elapsed_ms : session -> float

val name : session -> string
(** the label given at {!start} ("query" by default). *)

val session_id : session -> int
(** stable per-process id — the key the shared morsel pool's fair-share
    accounting and the cache's per-query admission scoping use. *)

val report : session -> report
val zero_report : report
val pp_report : Format.formatter -> report -> unit

(** {1 Admission control / overload resilience}

    The serving layer's front door (ISSUE 6). Where {!limits} bound one
    query, admission bounds the {e population}: concurrent queries
    globally and per tenant, queue depth, aggregate reserved memory, and
    queue wait time. A query that cannot be admitted is {e shed} with a
    typed [Vida_error.Overloaded] (exit code 77) carrying a retry-after
    hint — never a hang, never an unbounded queue. *)
module Admission : sig
  type config = {
    max_concurrent : int;  (** queries running at once *)
    max_queue : int;  (** waiters beyond the running set *)
    per_tenant : int;  (** concurrent running queries per tenant *)
    memory_watermark : int option;
        (** aggregate bytes the admitted set may reserve (each query
            reserves its memory budget; un-budgeted queries reserve 0) *)
    queue_timeout_ms : float;  (** max queue wait before shedding *)
    retry_after_ms : float;  (** backoff hint carried by shed errors *)
  }

  val default_config : config
  (** 4 concurrent, 16 queued, 2 per tenant, no watermark, 1 s queue
      timeout, 250 ms retry-after. *)

  type t
  type ticket

  val create : ?config:config -> unit -> t

  val admit : ?deadline_ms:float -> t -> tenant:string -> reserve:int -> ticket
  (** block until the query may run (a waiter occupies one of the
      [max_queue] slots; the wait is bounded by [queue_timeout_ms] and by
      [deadline_ms] when given), or shed it by raising
      [Vida_error.Overloaded]. Pair with {!release} via [Fun.protect]. *)

  val release : t -> ticket -> unit
  (** return the slot (and the memory reservation) — on every completion
      path, including failures and client disconnects. *)

  val pressure : t -> [ `Normal | `Elevated ]
  (** degradation-ladder input: [`Elevated] (waiters present or the
      running set at capacity) tells the server to run queries
      sequentially instead of fanning out over the shared pool. *)

  type gauges = {
    running : int;
    queued : int;
    reserved_bytes : int;
    tenants : (string * int) list;  (** running per tenant, sorted *)
    admitted_total : int;
    shed_total : int;
  }

  val gauges : t -> gauges
  (** instantaneous occupancy — the soak's leak check asserts these
      return to zero when traffic stops. *)

  val config : t -> config
end

(** {1 Per-source circuit breakers}

    Where {!with_retries} bounds one query's exposure to a transient
    fault, a breaker bounds the {e population}'s exposure to a source
    that keeps failing: after [failure_threshold] consecutive IO/parse
    failures against a source, further queries over it are shed
    immediately with a typed [Vida_error.Source_unavailable] (exit code
    78) carrying the remaining cooldown as a retry hint — a hashtable
    probe instead of a full failing scan plus retry backoffs. After
    [cooldown_ms] the breaker half-opens and lets exactly one caller
    through as a probe; success closes it, failure re-opens it.

    Keyed by the source's backing path; the taps live on the raw-buffer
    load path ({!Vida_raw.Raw_buffer}) and the query facade. State is
    process-global (breakers protect sources, not sessions). A breaker
    opening or shedding is recorded on the ambient session's degradation
    ladder as a ["breaker-open"] fallback. *)
module Breaker : sig
  type config = {
    failure_threshold : int;  (** consecutive failures that trip it *)
    cooldown_ms : float;  (** open → half-open probe delay *)
  }

  val default_config : config
  (** 5 consecutive failures, 2 s cooldown. *)

  val set_config : config -> unit
  val config : unit -> config

  val check : source:string -> unit
  (** the gate on the load path: no-op while closed; raises
      [Source_unavailable] while open (and counts the fast shed); lets
      one caller through as the probe once the cooldown elapses. *)

  val success : source:string -> unit
  (** a successful access: resets the consecutive-failure count and
      closes a half-open breaker (the probe succeeded). *)

  val failure : source:string -> reason:string -> unit
  (** a failed access: advances the consecutive count, trips the breaker
      at the threshold, and re-opens a half-open breaker (probe failed). *)

  val trip : source:string -> reason:string -> unit
  (** force the breaker open (chaos tests, operational shedding). *)

  val state : source:string -> [ `Closed | `Open | `Half_open ]

  type snapshot = {
    b_source : string;
    b_state : string;  (** ["closed"] | ["open"] | ["half-open"] *)
    b_failures : int;  (** consecutive failures while closed *)
    b_trips : int;  (** times the breaker opened *)
    b_shed : int;  (** queries shed while open *)
    b_reason : string;  (** last recorded failure reason *)
  }

  val snapshot : unit -> snapshot list
  (** all known breakers, sorted by source — the serving layer's health
      report embeds this. *)

  val reset : unit -> unit

  (** {2 Durable export/import}

      An open breaker is operational knowledge paid for with failed
      scans; these let the state directory carry it across a restart. *)

  type persisted = {
    p_source : string;
    p_failures : int;  (** consecutive failures while closed *)
    p_open_remaining_ms : float option;
        (** [Some r]: breaker is open with [r] ms of cooldown left — a
            duration, not a timestamp, so it survives a restart.
            Half-open exports as [Some 0.]: the probe died with the
            process. *)
    p_trips : int;
    p_shed : int;
    p_reason : string;
  }

  val export : unit -> persisted list
  (** all known breakers, sorted by source. *)

  val import : persisted list -> unit
  (** Reconstruct breaker entries: closed entries restore their
      consecutive-failure count, open ones are back-dated so exactly the
      persisted cooldown remains (clamped to the current config's
      cooldown). Existing entries for the same source are overwritten. *)
end

(** {1 Engine-level fault injection}

    Deterministic chaos hooks for exercising the degradation ladder in
    tests and the bench harness (raw-byte faults live in
    {!Vida_raw.Fault_inject}). *)
module Chaos : sig
  val fail_jit_compiles : int -> unit
  (** arm [n] injected JIT compile failures: the next [n] JIT compilations
      degrade to the Generic engine. *)

  val take_jit_failure : unit -> string option
  (** consume one armed failure (called by the engine facade). *)

  val reset : unit -> unit
end
