open Vida_raw

type entry = { source : Source.t; explicit_schema : bool }

(* registration/lookup race under concurrent sessions: one mutex guards
   the table and the insertion order together *)
type t = {
  table : (string, entry) Hashtbl.t;
  mutable order : string list;
  lock : Vida_sync.Lock.t;
}

let create () =
  { table = Hashtbl.create 16; order = [];
    lock = Vida_sync.Lock.create ~rank:40 ~name:"catalog.registry" () }

let locked t f = Vida_sync.Lock.protect t.lock f

let add t name entry =
  locked t (fun () ->
      if Hashtbl.mem t.table name then
        invalid_arg (Printf.sprintf "Registry: source %S already registered" name);
      Hashtbl.replace t.table name entry;
      t.order <- t.order @ [ name ])

let register_csv t ~name ~path ?(delim = ',') ?(header = true) ?schema () =
  let snapshot = File_snapshot.take path in
  let explicit = schema <> None in
  let schema =
    match schema with
    | Some s -> s
    | None -> Infer.csv_schema ~delim ~header (Raw_buffer.of_path path)
  in
  let source =
    { Source.name; format = Source.Csv { delim; header; schema };
      path = Some path; snapshot = Some snapshot }
  in
  add t name { source; explicit_schema = explicit };
  source

let register_json t ~name ~path ?element () =
  let snapshot = File_snapshot.take path in
  let explicit = element <> None in
  let element =
    match element with
    | Some e -> e
    | None -> Infer.json_element (Raw_buffer.of_path path)
  in
  let source =
    { Source.name; format = Source.Json_lines { element }; path = Some path;
      snapshot = Some snapshot }
  in
  add t name { source; explicit_schema = explicit };
  source

let register_xml t ~name ~path ?element () =
  let snapshot = File_snapshot.take path in
  let explicit = element <> None in
  let element =
    match element with
    | Some e -> e
    | None -> Infer.xml_element (Raw_buffer.of_path path)
  in
  let source =
    { Source.name; format = Source.Xml { element }; path = Some path;
      snapshot = Some snapshot }
  in
  add t name { source; explicit_schema = explicit };
  source

let register_binarray t ~name ~path =
  let snapshot = File_snapshot.take path in
  let source =
    { Source.name; format = Source.Binary_array; path = Some path;
      snapshot = Some snapshot }
  in
  add t name { source; explicit_schema = true };
  source

let register_external t ~name ~element ~count ~produce =
  let source =
    { Source.name; format = Source.External { element; count; produce };
      path = None; snapshot = None }
  in
  add t name { source; explicit_schema = true };
  source

let register_inline t ~name value =
  let source =
    { Source.name; format = Source.Inline value; path = None; snapshot = None }
  in
  add t name { source; explicit_schema = true };
  source

let find t name =
  locked t (fun () ->
      Option.map (fun e -> e.source) (Hashtbl.find_opt t.table name))

let mem t name = locked t (fun () -> Hashtbl.mem t.table name)
let names t = locked t (fun () -> t.order)

let sources t =
  locked t (fun () ->
      List.filter_map
        (fun n -> Option.map (fun e -> e.source) (Hashtbl.find_opt t.table n))
        t.order)

let unregister t name =
  locked t (fun () ->
      Hashtbl.remove t.table name;
      t.order <- List.filter (fun n -> not (String.equal n name)) t.order)

let type_env t =
  List.map (fun s -> (s.Source.name, Source.collection_type s)) (sources t)

let stale_sources t = List.filter Source.stale (sources t)

let refresh t name =
  (* snapshot/inference run outside the lock (they scan the file); only
     the table reads and the final replace are guarded *)
  match locked t (fun () -> Hashtbl.find_opt t.table name) with
  | None -> None
  | Some { source; explicit_schema } -> (
    match source.Source.path with
    | None -> Some source
    | Some path ->
      let snapshot = File_snapshot.take path in
      let format =
        match source.Source.format, explicit_schema with
        | Source.Csv { delim; header; _ }, false ->
          Source.Csv
            { delim; header;
              schema = Infer.csv_schema ~delim ~header (Raw_buffer.of_path path)
            }
        | Source.Json_lines _, false ->
          Source.Json_lines { element = Infer.json_element (Raw_buffer.of_path path) }
        | Source.Xml _, false ->
          Source.Xml { element = Infer.xml_element (Raw_buffer.of_path path) }
        | f, _ -> f
      in
      let source = { source with Source.format; snapshot = Some snapshot } in
      locked t (fun () ->
          if Hashtbl.mem t.table name then
            Hashtbl.replace t.table name { source; explicit_schema });
      Some source)
